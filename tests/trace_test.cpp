// Tests for evq::trace: deterministic 1-in-N sampling, span-ring wrap
// behaviour (main and help areas), the always-on help markers that make
// helper→helped flow pairing sampling-independent, and the Chrome Trace
// Format exporter (shape pinned by tests/golden/trace_chrome_v1.json —
// regenerate with EVQ_REGEN_GOLDEN=1). A multi-writer export test gives TSan
// teeth to the racy-but-atomic ring reads.
//
// Probe-value assertions are guarded by EVQ_TRACE: a -DEVQ_TRACE=OFF build
// compiles every probe to nothing, so those builds assert emptiness instead
// (the SpanRing and exporter APIs stay live in both builds).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "evq/telemetry/registry.hpp"
#include "evq/trace/chrome_trace.hpp"
#include "evq/trace/trace.hpp"

namespace evq::trace {
namespace {

std::size_t count_of(const std::string& doc, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t at = doc.find(needle); at != std::string::npos;
       at = doc.find(needle, at + needle.size())) {
    ++n;
  }
  return n;
}

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_sampling(0);
    detail::reset_for_test();
  }
  void TearDown() override {
    set_sampling(0);
    detail::reset_for_test();
  }
};

TEST_F(TraceTest, EnumNamesArePinned) {
  // trace_report.py groups by these strings; renaming one is a tooling break.
  EXPECT_STREQ(op_code_name(OpCode::kPushOk), "push_ok");
  EXPECT_STREQ(op_code_name(OpCode::kPushFull), "push_full");
  EXPECT_STREQ(op_code_name(OpCode::kPopOk), "pop_ok");
  EXPECT_STREQ(op_code_name(OpCode::kPopEmpty), "pop_empty");
  EXPECT_STREQ(phase_name(Phase::kIndexLoad), "index_load");
  EXPECT_STREQ(phase_name(Phase::kSlotAttempt), "slot_attempt");
  EXPECT_STREQ(phase_name(Phase::kBackoff), "backoff");
  EXPECT_STREQ(phase_name(Phase::kFaaReserve), "faa_reserve");
  EXPECT_STREQ(phase_name(Phase::kSlotSkip), "slot_skip");
  EXPECT_STREQ(help_target_name(HelpTarget::kTail), "tail");
  EXPECT_STREQ(help_target_name(HelpTarget::kHead), "head");
  EXPECT_STREQ(reclaim_kind_name(ReclaimKind::kHpScan), "hp_scan");
  EXPECT_STREQ(reclaim_kind_name(ReclaimKind::kEpochAdvance), "epoch_advance");
  EXPECT_STREQ(reclaim_kind_name(ReclaimKind::kPoolTake), "pool_take");
}

TEST_F(TraceTest, DisabledProbesRecordNothing) {
  ASSERT_FALSE(enabled());
  for (std::uint64_t i = 0; i < 16; ++i) {
    OpProbe probe(7, OpProbe::OpKind::kPush);
    probe.begin_phase(Phase::kIndexLoad);
    probe.helped(i, HelpTarget::kTail);  // even always-on markers gate on enabled()
    probe.finish(OpCode::kPushOk, i, 0);
  }
  EXPECT_TRUE(snapshot_spans().empty());
}

TEST_F(TraceTest, SamplingRatioIsDeterministic) {
  // set_sampling resets this thread's countdown, so the FIRST probe arms and
  // then every 4th: 32 probes -> exactly 8 sampled ops, indices 0,4,8,...
  set_sampling(4);
  for (std::uint64_t i = 0; i < 32; ++i) {
    OpProbe probe(7, OpProbe::OpKind::kPush);
    probe.begin_phase(Phase::kIndexLoad);
    probe.begin_phase(Phase::kSlotAttempt);
    probe.finish(OpCode::kPushOk, i, 0);
  }
  std::size_t ops = 0;
  std::size_t phases = 0;
  for (const SpanSnapshot& s : snapshot_spans()) {
    if (s.kind == EventKind::kOp) {
      ++ops;
      EXPECT_EQ(s.index % 4, 0u) << "unsampled op leaked into the ring";
      EXPECT_LE(s.t_start, s.t_end);
    } else if (s.kind == EventKind::kPhase) {
      ++phases;
    }
  }
#if EVQ_TRACE
  EXPECT_EQ(ops, 8u);
  EXPECT_EQ(phases, 16u);  // two sub-slices per sampled op
#else
  EXPECT_EQ(ops, 0u);
  EXPECT_EQ(phases, 0u);
#endif
}

TEST_F(TraceTest, ReclaimProbeSharesTheSamplingGate) {
  set_sampling(2);
  for (int i = 0; i < 10; ++i) {
    ReclaimProbe probe(kNoQueue, ReclaimKind::kHpScan);
  }
  std::size_t reclaims = 0;
  for (const SpanSnapshot& s : snapshot_spans()) {
    if (s.kind == EventKind::kReclaim) {
      ++reclaims;
      EXPECT_EQ(s.queue_id, kNoQueue);
      EXPECT_EQ(static_cast<ReclaimKind>(s.code), ReclaimKind::kHpScan);
    }
  }
#if EVQ_TRACE
  EXPECT_EQ(reclaims, 5u);
#else
  EXPECT_EQ(reclaims, 0u);
#endif
}

TEST_F(TraceTest, MainRingWrapKeepsNewestWindow) {
  SpanRing& ring = detail::make_ring_for_test();
  const std::uint64_t total = SpanRing::kSpans + 100;
  for (std::uint64_t i = 0; i < total; ++i) {
    ring.record(EventKind::kOp, static_cast<std::uint8_t>(OpCode::kPushOk), 1, i, 0, i, i + 1);
  }
  const std::vector<SpanSnapshot> spans = snapshot_spans();
  ASSERT_EQ(spans.size(), SpanRing::kSpans);
  // The surviving window is the newest kSpans records: 100 .. total-1.
  std::uint64_t min_index = ~std::uint64_t{0};
  for (const SpanSnapshot& s : spans) {
    min_index = s.index < min_index ? s.index : min_index;
  }
  EXPECT_EQ(min_index, 100u);
  EXPECT_EQ(spans.back().index, total - 1);
}

TEST_F(TraceTest, HelpAreaWrapsIndependentlyOfMainRing) {
  SpanRing& ring = detail::make_ring_for_test();
  const std::uint64_t helps = SpanRing::kHelpSpans + 7;
  for (std::uint64_t i = 0; i < helps; ++i) {
    ring.record_help(static_cast<std::uint8_t>(HelpTarget::kTail), 1, i,
                     OpProbe::kHelperSide, i, i + 1);
  }
  // Main-ring churn must not evict help records — that is the reason the
  // help area exists (helps are rare; phase spam is not).
  for (std::uint64_t i = 0; i < 2 * SpanRing::kSpans; ++i) {
    ring.record(EventKind::kPhase, static_cast<std::uint8_t>(Phase::kBackoff), 1, 0, 0, i, i);
  }
  std::size_t help_count = 0;
  std::uint64_t min_index = ~std::uint64_t{0};
  for (const SpanSnapshot& s : snapshot_spans()) {
    if (s.kind == EventKind::kHelp) {
      ++help_count;
      min_index = s.index < min_index ? s.index : min_index;
    }
  }
  EXPECT_EQ(help_count, SpanRing::kHelpSpans);
  EXPECT_EQ(min_index, 7u);
}

TEST_F(TraceTest, HelpMarkersAreAlwaysOnWhileSampled) {
  // At 1-in-1000, probe #2 is unsampled — but both help sides must still
  // record instant markers, or the exporter would almost never find a pair.
  set_sampling(1000);
  {
    OpProbe armed(3, OpProbe::OpKind::kPush);
    armed.finish(OpCode::kPushOk, 0, 0);
  }
  {
    OpProbe unsampled(3, OpProbe::OpKind::kPush);
    unsampled.help_advance(41, HelpTarget::kTail);
    unsampled.helped(42, HelpTarget::kTail);
    unsampled.finish(OpCode::kPushOk, 1, 0);
  }
  bool saw_helper = false;
  bool saw_helped = false;
  for (const SpanSnapshot& s : snapshot_spans()) {
    if (s.kind != EventKind::kHelp) {
      continue;
    }
    if (s.extra == OpProbe::kHelperSide && s.index == 41) {
      saw_helper = true;
      EXPECT_EQ(s.t_start, s.t_end);  // instant: no span was open
    }
    if (s.extra == OpProbe::kHelpedSide && s.index == 42) {
      saw_helped = true;
    }
  }
#if EVQ_TRACE
  EXPECT_TRUE(saw_helper);
  EXPECT_TRUE(saw_helped);
#else
  EXPECT_FALSE(saw_helper);
  EXPECT_FALSE(saw_helped);
#endif
}

TEST_F(TraceTest, EmptyExportIsValidJson) {
  std::ostringstream os;
  export_chrome_trace(os);
  EXPECT_EQ(os.str(), "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n]}\n");
}

// Fabricates the same two-thread scene the exporter comment describes:
// thread 0 pushes (with phase sub-slices), help-advances index 9 and scans;
// thread 1 left the always-on helped marker for index 9 and pops. Fixed
// ns_per_tick and origin make the output byte-stable.
std::string fabricated_two_thread_trace(std::uint32_t queue_id) {
  SpanRing& a = detail::make_ring_for_test();  // ordinal 0
  SpanRing& b = detail::make_ring_for_test();  // ordinal 1
  a.record(EventKind::kPhase, static_cast<std::uint8_t>(Phase::kIndexLoad), queue_id, 0, 0,
           1000, 1200);
  a.record(EventKind::kPhase, static_cast<std::uint8_t>(Phase::kSlotAttempt), queue_id, 0, 0,
           1200, 1900);
  a.record(EventKind::kOp, static_cast<std::uint8_t>(OpCode::kPushOk), queue_id, 7, 1, 1000,
           2000);
  a.record(EventKind::kReclaim, static_cast<std::uint8_t>(ReclaimKind::kHpScan), kNoQueue, 0,
           0, 2100, 2600);
  a.record_help(static_cast<std::uint8_t>(HelpTarget::kTail), queue_id, 9,
                OpProbe::kHelperSide, 2200, 2500);
  b.record(EventKind::kOp, static_cast<std::uint8_t>(OpCode::kPopOk), queue_id, 7, 0, 3000,
           3300);
  b.record_help(static_cast<std::uint8_t>(HelpTarget::kTail), queue_id, 9,
                OpProbe::kHelpedSide, 2550, 2550);

  ExportOptions opts;
  opts.ns_per_tick = 1000.0;  // 1 tick == 1 us: human-checkable golden values
  opts.origin = 1000;
  std::ostringstream os;
  export_chrome_trace(os, opts);
  return os.str();
}

TEST_F(TraceTest, GoldenChromeTrace) {
  telemetry::ScopedQueueMetrics tm("fifo-golden");
  const std::string doc = fabricated_two_thread_trace(tm.queue_id());

  const std::string golden_path =
      std::string(EVQ_TEST_GOLDEN_DIR) + "/trace_chrome_v1.json";
  if (std::getenv("EVQ_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path);
    ASSERT_TRUE(out.good()) << golden_path;
    out << doc;
    GTEST_SKIP() << "regenerated " << golden_path;
  }
  std::ifstream golden(golden_path);
  ASSERT_TRUE(golden.good()) << "missing golden file; see this test's header comment";
  std::stringstream want;
  want << golden.rdbuf();
  EXPECT_EQ(doc, want.str())
      << "Chrome Trace Format output drifted. If intentional, regenerate with "
         "EVQ_REGEN_GOLDEN=1 and mention the change in DESIGN.md §11.";
}

// The SCQ-generation scene: an FAA-reserve sub-slice instead of an
// index-load/CAS pair, a slot_skip sub-slice where the dequeuer bumped a
// stale-cycle entry, and a tail catch-up help pair (the cautious dequeue is
// the helper; the always-on helped marker sits on the other thread).
std::string fabricated_scq_trace(std::uint32_t queue_id) {
  SpanRing& a = detail::make_ring_for_test();  // ordinal 0
  SpanRing& b = detail::make_ring_for_test();  // ordinal 1
  a.record(EventKind::kPhase, static_cast<std::uint8_t>(Phase::kFaaReserve), queue_id, 0, 0,
           1000, 1150);
  a.record(EventKind::kPhase, static_cast<std::uint8_t>(Phase::kSlotSkip), queue_id, 0, 0,
           1150, 1400);
  a.record(EventKind::kPhase, static_cast<std::uint8_t>(Phase::kFaaReserve), queue_id, 0, 0,
           1400, 1550);
  a.record(EventKind::kPhase, static_cast<std::uint8_t>(Phase::kSlotAttempt), queue_id, 0, 0,
           1550, 1900);
  a.record(EventKind::kOp, static_cast<std::uint8_t>(OpCode::kPopOk), queue_id, 13, 1, 1000,
           2000);
  a.record_help(static_cast<std::uint8_t>(HelpTarget::kTail), queue_id, 14,
                OpProbe::kHelperSide, 1300, 1380);
  b.record(EventKind::kOp, static_cast<std::uint8_t>(OpCode::kPushOk), queue_id, 14, 0, 2100,
           2400);
  b.record_help(static_cast<std::uint8_t>(HelpTarget::kTail), queue_id, 14,
                OpProbe::kHelpedSide, 1390, 1390);

  ExportOptions opts;
  opts.ns_per_tick = 1000.0;
  opts.origin = 1000;
  std::ostringstream os;
  export_chrome_trace(os, opts);
  return os.str();
}

TEST_F(TraceTest, GoldenChromeTraceScq) {
  telemetry::ScopedQueueMetrics tm("scq-golden");
  const std::string doc = fabricated_scq_trace(tm.queue_id());

  // The SCQ phases must render as their own named slices, not fall back to
  // "unknown" — this is what trace_report.py and the Perfetto UI key on.
  EXPECT_EQ(count_of(doc, "\"name\":\"faa_reserve\""), 2u);
  EXPECT_EQ(count_of(doc, "\"name\":\"slot_skip\""), 1u);
  EXPECT_EQ(count_of(doc, "\"ph\":\"s\""), 1u) << "catch-up must pair into a flow arrow";

  const std::string golden_path =
      std::string(EVQ_TEST_GOLDEN_DIR) + "/trace_chrome_scq_v1.json";
  if (std::getenv("EVQ_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path);
    ASSERT_TRUE(out.good()) << golden_path;
    out << doc;
    GTEST_SKIP() << "regenerated " << golden_path;
  }
  std::ifstream golden(golden_path);
  ASSERT_TRUE(golden.good()) << "missing golden file; see this test's header comment";
  std::stringstream want;
  want << golden.rdbuf();
  EXPECT_EQ(doc, want.str())
      << "Chrome Trace Format output drifted for SCQ spans. If intentional, "
         "regenerate with EVQ_REGEN_GOLDEN=1 and mention the change in DESIGN.md §12.";
}

TEST_F(TraceTest, HelperHelpedPairBecomesFlowArrow) {
  telemetry::ScopedQueueMetrics tm("fifo-flow");
  const std::string doc = fabricated_two_thread_trace(tm.queue_id());
  // One flow start on the helper's track, one flow finish on the helped's.
  EXPECT_EQ(count_of(doc, "\"ph\":\"s\""), 1u);
  EXPECT_EQ(count_of(doc, "\"ph\":\"f\""), 1u);
  EXPECT_NE(doc.find("\"ph\":\"f\",\"bp\":\"e\",\"name\":\"help\",\"cat\":\"help\","
                     "\"id\":1,\"pid\":0,\"tid\":1"),
            std::string::npos)
      << "flow must finish on the helped thread's track:\n"
      << doc;
  // The helped marker itself renders as its own slice, named distinctly.
  EXPECT_EQ(count_of(doc, "\"name\":\"helped\""), 1u);
  EXPECT_EQ(count_of(doc, "\"name\":\"help_advance\""), 1u);
}

TEST_F(TraceTest, SameThreadHelpPairDrawsNoFlow) {
  // A weak-LLSC spurious SC failure records a helped marker on the SAME
  // thread that later help-advances the same index; a self-arrow would be
  // noise, so the exporter suppresses same-ordinal pairs.
  SpanRing& a = detail::make_ring_for_test();
  a.record_help(static_cast<std::uint8_t>(HelpTarget::kHead), 5, 11, OpProbe::kHelpedSide,
                100, 100);
  a.record_help(static_cast<std::uint8_t>(HelpTarget::kHead), 5, 11, OpProbe::kHelperSide,
                150, 180);
  std::ostringstream os;
  export_chrome_trace(os);
  EXPECT_EQ(count_of(os.str(), "\"ph\":\"s\""), 0u);
  EXPECT_EQ(count_of(os.str(), "\"ph\":\"f\""), 0u);
}

TEST_F(TraceTest, HelpRecordsSurviveMainRingChurn) {
  // End-to-end version of HelpAreaWrapsIndependentlyOfMainRing: even after
  // the main ring wrapped many times, the export still pairs the old help.
  SpanRing& a = detail::make_ring_for_test();
  SpanRing& b = detail::make_ring_for_test();
  a.record_help(static_cast<std::uint8_t>(HelpTarget::kTail), 5, 21, OpProbe::kHelperSide,
                100, 130);
  b.record_help(static_cast<std::uint8_t>(HelpTarget::kTail), 5, 21, OpProbe::kHelpedSide,
                140, 140);
  for (std::uint64_t i = 0; i < 3 * SpanRing::kSpans; ++i) {
    a.record(EventKind::kPhase, static_cast<std::uint8_t>(Phase::kBackoff), 5, 0, 0,
             200 + i, 201 + i);
  }
  std::ostringstream os;
  export_chrome_trace(os);
  EXPECT_EQ(count_of(os.str(), "\"name\":\"help_advance\""), 1u);
  EXPECT_EQ(count_of(os.str(), "\"ph\":\"s\""), 1u);
}

TEST_F(TraceTest, ExportRacesWithWritersSafely) {
  // TSan teeth: four threads hammer probes (including both help sides) while
  // this thread exports repeatedly. No value assertions beyond well-formed
  // output — the point is that racy-but-atomic ring reads stay race-free.
  set_sampling(1);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&stop, t] {
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        OpProbe probe(2, t % 2 == 0 ? OpProbe::OpKind::kPush : OpProbe::OpKind::kPop);
        probe.begin_phase(Phase::kIndexLoad);
        probe.begin_phase(Phase::kSlotAttempt);
        if (i % 17 == 0) {
          probe.begin_phase(Phase::kHelpAdvance);
          probe.help_advance(i, HelpTarget::kTail);
        }
        if (i % 19 == 0) {
          probe.helped(i, HelpTarget::kHead);
        }
        probe.finish(i % 2 == 0 ? OpCode::kPushOk : OpCode::kPopOk, i, 0);
        ++i;
      }
    });
  }
  std::string last;
  for (int round = 0; round < 10; ++round) {
    std::ostringstream os;
    export_chrome_trace(os);
    last = os.str();
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& w : writers) {
    w.join();
  }
  EXPECT_EQ(last.rfind("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[", 0), 0u);
  ASSERT_GE(last.size(), 3u);
  EXPECT_EQ(last.substr(last.size() - 3), "]}\n");
}

}  // namespace
}  // namespace evq::trace
