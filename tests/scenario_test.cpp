// Tests for the scenario layer of evq-bench: registry completeness, the
// default sweep runner, CLI override semantics, latency sampling and
// adaptive repetition plumbed through run_workload_ex, and the versioned
// JSON document — including a golden-file test that pins schema_version 2
// byte-for-byte (changing ANY key or shape requires bumping
// kBenchJsonSchemaVersion and regenerating tests/golden/bench_schema_v2.json).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "evq/harness/bench_json.hpp"
#include "evq/harness/scenario.hpp"
#include "evq/perf/backend.hpp"
#include "evq/perf/perf.hpp"

namespace {

using namespace evq::harness;

TEST(ScenarioRegistry, EveryRetiredBinaryHasAScenario) {
  // The 13 harness-based bench mains this driver replaced, plus the
  // observability scenarios (telemetry-overhead smoke, the E7 pairwise
  // trace workload, the trace-overhead A/B, the E10 combining-overhead
  // A/B, the E11 health-overhead A/B, the E12 perf-overhead A/B), the E8
  // cross-generation SCQ head-to-head, the E9 segmented-queue burst
  // comparison, and the E10 combining ladder. A scenario disappearing from
  // the registry silently drops an experiment.
  const std::set<std::string> expected = {
      "fig6a",         "fig6b",       "fig6c",     "fig6d",             "overhead",
      "op-profile",    "ablation-llsc", "ablation-hp", "ablation-capacity", "ext-mixed",
      "ext-reclaim",   "sharded",     "scq",       "backoff",   "telemetry-overhead",
      "pairwise",      "trace-overhead", "burst",  "combining", "combining-overhead",
      "health-overhead", "perf-overhead"};
  std::set<std::string> got;
  for (const ScenarioSpec& spec : all_scenarios()) {
    EXPECT_TRUE(got.insert(spec.name).second) << "duplicate scenario " << spec.name;
  }
  EXPECT_EQ(got, expected);
}

TEST(ScenarioRegistry, SpecsAreWellFormed) {
  for (const ScenarioSpec& spec : all_scenarios()) {
    EXPECT_FALSE(spec.name.empty());
    EXPECT_FALSE(spec.title.empty()) << spec.name;
    EXPECT_FALSE(spec.summary.empty()) << spec.name;
    EXPECT_FALSE(spec.default_threads.empty()) << spec.name;
    if (!spec.run) {
      EXPECT_TRUE(static_cast<bool>(spec.rows)) << spec.name;
      EXPECT_TRUE(static_cast<bool>(spec.series)) << spec.name;
    }
    EXPECT_NO_FATAL_FAILURE(find_scenario(spec.name));
  }
}

TEST(ScenarioOptions, DefaultsComeFromSpecAndOverridesWin) {
  const ScenarioSpec& fig6a = find_scenario("fig6a");
  CliOverrides none;
  const CliOptions defaults = scenario_options(fig6a, none);
  EXPECT_EQ(defaults.thread_counts, fig6a.default_threads);
  EXPECT_EQ(defaults.workload.iterations, fig6a.default_iters);
  EXPECT_EQ(defaults.workload.runs, fig6a.default_runs);

  CliOverrides ov;
  ov.thread_counts = std::vector<unsigned>{1, 2};
  ov.iterations = 123;
  ov.latency_sample_every = 7;
  ov.stable_cv = 0.10;
  ov.max_runs = 9;
  const CliOptions tuned = scenario_options(fig6a, ov);
  EXPECT_EQ(tuned.thread_counts, (std::vector<unsigned>{1, 2}));
  EXPECT_EQ(tuned.workload.iterations, 123u);
  EXPECT_EQ(tuned.workload.runs, fig6a.default_runs) << "unset override must not apply";
  EXPECT_EQ(tuned.workload.latency_sample_every, 7u);
  EXPECT_DOUBLE_EQ(tuned.workload.stable_cv, 0.10);
  EXPECT_EQ(tuned.workload.max_runs, 9u);
}

CliOptions tiny_options(const ScenarioSpec& spec) {
  CliOverrides ov;
  ov.thread_counts = std::vector<unsigned>{1, 2};
  ov.iterations = 50;
  ov.runs = 2;
  return scenario_options(spec, ov);
}

TEST(ScenarioRun, Fig6aShapeAndMeasurements) {
  const ScenarioSpec& spec = find_scenario("fig6a");
  const CliOptions opts = tiny_options(spec);
  const ScenarioResult result = run_scenario(spec, opts);

  EXPECT_EQ(result.name, "fig6a");
  EXPECT_EQ(result.axis, "threads");
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_EQ(result.rows[0].label, "1");
  EXPECT_EQ(result.rows[1].label, "2");
  EXPECT_EQ(result.rows[1].params.threads, 2u);
  ASSERT_EQ(result.series.size(), 5u);
  EXPECT_NE(result.series_named("fifo-llsc"), nullptr);
  EXPECT_NE(result.series_named("fifo-simcas"), nullptr);
  EXPECT_EQ(result.series_named("no-such-algo"), nullptr);
  for (const ScenarioSeries& s : result.series) {
    ASSERT_EQ(s.cells.size(), 2u) << s.name;
    for (const CellStats& cell : s.cells) {
      EXPECT_GT(cell.time.mean, 0.0) << s.name;
      EXPECT_EQ(cell.time.n, 2u) << s.name;
      EXPECT_GT(cell.throughput, 0.0) << s.name;
      // 2 runs x threads x iterations x burst x 2 (each push has its pop).
      EXPECT_GT(cell.total_ops, 0u) << s.name;
      EXPECT_EQ(cell.latency.count(), 0u) << "latency sampling must default off";
      EXPECT_FALSE(cell.has_ops);
    }
  }
}

TEST(ScenarioRun, LatencySamplingFillsHistograms) {
  const ScenarioSpec& spec = find_scenario("fig6a");
  CliOverrides ov;
  ov.thread_counts = std::vector<unsigned>{2};
  ov.iterations = 100;
  ov.runs = 1;
  ov.latency_sample_every = 4;
  ov.op_stats = true;
  const CliOptions opts = scenario_options(spec, ov);
  const ScenarioResult result = run_scenario(spec, opts);
  for (const ScenarioSeries& s : result.series) {
    const CellStats& cell = s.cells[0];
    // 2 threads x 100 iters x 10 ops / sample period 4 = 500 samples/run.
    EXPECT_GT(cell.latency.count(), 0u) << s.name;
    EXPECT_GT(cell.latency.p99(), 0u) << s.name;
    EXPECT_GE(cell.latency.max(), cell.latency.p50()) << s.name;
    EXPECT_TRUE(cell.has_ops) << s.name;
  }
  const ScenarioSeries* simcas = result.series_named("fifo-simcas");
  ASSERT_NE(simcas, nullptr);
  EXPECT_GT(simcas->cells[0].ops.cas_attempts, 0u)
      << "simulated-CAS queue must report CAS attempts under --op-stats";
}

TEST(ScenarioRun, TelemetryDeltaCapturesQueueCounters) {
  const ScenarioSpec& spec = find_scenario("telemetry-overhead");
  CliOverrides ov;
  ov.thread_counts = std::vector<unsigned>{1};
  ov.iterations = 50;
  ov.runs = 1;
  ov.telemetry = true;
  const CliOptions opts = scenario_options(spec, ov);
  ASSERT_TRUE(opts.telemetry);
  const ScenarioResult result = run_scenario(spec, opts);
#if EVQ_TELEMETRY
  ASSERT_FALSE(result.telemetry.empty());
  const evq::telemetry::QueueCounters* llsc = nullptr;
  for (const evq::telemetry::QueueCounters& q : result.telemetry) {
    if (q.queue == "fifo-llsc") {
      llsc = &q;
    }
  }
  ASSERT_NE(llsc, nullptr) << "fifo-llsc missing from the scenario's telemetry delta";
  // 1 run x 1 thread x 50 iterations x burst 5: every push eventually
  // succeeds, so the delta is exact despite the shared global registry.
  EXPECT_EQ(llsc->counters[evq::telemetry::Counter::kPushOk], 250u);
  EXPECT_EQ(llsc->counters[evq::telemetry::Counter::kPopOk], 250u);
#else
  EXPECT_TRUE(result.telemetry.empty()) << "EVQ_TELEMETRY=0 must yield no counter deltas";
#endif
}

TEST(ScenarioRun, PerfNullBackendDegradesToExplicitRecord) {
  // The E12 degradation contract end to end: with the null backend forced
  // (as auto-selected on perf-denied hosts), a --perf run still completes,
  // cells carry no perf section, and the scenario-level record names the
  // backend and the reason instead of going silent.
  evq::perf::NullBackend null_backend("forced by test");
  evq::perf::set_default_backend_for_testing(&null_backend);
  const ScenarioSpec& spec = find_scenario("perf-overhead");
  CliOverrides ov;
  ov.thread_counts = std::vector<unsigned>{1};
  ov.iterations = 20;
  ov.runs = 1;
  ov.perf = true;
  const CliOptions opts = scenario_options(spec, ov);
  ASSERT_TRUE(opts.perf);
  ASSERT_TRUE(opts.workload.record_perf);
  const ScenarioResult result = run_scenario(spec, opts);
  evq::perf::set_default_backend_for_testing(nullptr);

  EXPECT_TRUE(result.perf.enabled);
  EXPECT_EQ(result.perf.backend, "null");
  EXPECT_FALSE(result.perf.available);
  EXPECT_EQ(result.perf.reason, "forced by test");
  for (const ScenarioSeries& s : result.series) {
    for (const CellStats& cell : s.cells) {
      EXPECT_FALSE(cell.has_perf) << s.name;
      EXPECT_GT(cell.total_ops, 0u) << s.name << ": the workload itself must be unaffected";
    }
  }
  const std::string doc = bench_results_to_json(BenchHostInfo{}, {result}, {opts});
  EXPECT_NE(doc.find("\"perf\":{\"backend\":\"null\",\"available\":false,"
                     "\"reason\":\"forced by test\"}"),
            std::string::npos);
  EXPECT_EQ(doc.find("cycles_per_op"), std::string::npos);
}

TEST(ScenarioRun, PerfMockBackendFillsCells) {
#if !EVQ_PERF
  GTEST_SKIP() << "EVQ_PERF=0: scopes are compiled out";
#else
  // With a live (mock) backend the same run attributes counters to every
  // cell. The mock clock never advances, so the values are zero — what this
  // pins is the plumbing: worker scopes open, harvest and mark events
  // available all the way into the JSON cell.
  evq::perf::MockBackend mock;
  evq::perf::set_default_backend_for_testing(&mock);
  const ScenarioSpec& spec = find_scenario("perf-overhead");
  CliOverrides ov;
  ov.thread_counts = std::vector<unsigned>{1};
  ov.iterations = 20;
  ov.runs = 1;
  ov.perf = true;
  const ScenarioResult result = run_scenario(spec, scenario_options(spec, ov));
  evq::perf::set_default_backend_for_testing(nullptr);

  EXPECT_TRUE(result.perf.enabled);
  EXPECT_EQ(result.perf.backend, "mock");
  EXPECT_TRUE(result.perf.available);
  for (const ScenarioSeries& s : result.series) {
    for (const CellStats& cell : s.cells) {
      EXPECT_TRUE(cell.has_perf) << s.name;
      EXPECT_EQ(cell.perf.ops, cell.total_ops) << s.name;
      EXPECT_TRUE(cell.perf.has(evq::perf::Event::kCycles)) << s.name;
    }
  }
#endif
}

TEST(ScenarioRun, AdaptiveRepetitionRespectsBounds) {
  // An impossible CV target with a low cap: every cell runs exactly max_runs.
  const ScenarioSpec& spec = find_scenario("overhead");
  CliOverrides ov;
  ov.iterations = 30;
  ov.runs = 2;
  ov.stable_cv = 1e-9;
  ov.max_runs = 3;
  const CliOptions opts = scenario_options(spec, ov);
  const ScenarioResult result = run_scenario(spec, opts);
  for (const ScenarioSeries& s : result.series) {
    EXPECT_EQ(s.cells[0].time.n, 3u) << s.name;
  }
}

// ---------------------------------------------------------------------------
// JSON document
// ---------------------------------------------------------------------------

/// A fully deterministic synthetic result exercising every schema branch
/// (latency present/absent, op counters present/absent, multiple series).
ScenarioResult synthetic_result() {
  ScenarioResult r;
  r.name = "synthetic";
  r.title = "Synthetic scenario for the schema golden file";
  r.axis = "threads";
  WorkloadParams p1;
  p1.threads = 1;
  p1.iterations = 100;
  p1.runs = 2;
  r.rows.push_back({"1", p1});
  WorkloadParams p2 = p1;
  p2.threads = 2;
  p2.latency_sample_every = 4;
  p2.stable_cv = 0.05;
  p2.max_runs = 8;
  p2.record_op_stats = true;
  r.rows.push_back({"2", p2});

  ScenarioSeries plain{"algo-a", "Algorithm A", {}};
  CellStats c1;
  c1.time = summarize({0.5, 1.5});
  c1.throughput = 2000.0;
  c1.total_ops = 4000;
  plain.cells.push_back(c1);
  CellStats c2;
  c2.time = summarize({0.25, 0.75});
  c2.throughput = 8000.0;
  c2.total_ops = 4000;
  c2.latency.record_n(100, 98);
  c2.latency.record_n(1000, 2);
  c2.has_ops = true;
  c2.ops.cas_attempts = 10;
  c2.ops.cas_success = 8;
  c2.ops.faa = 4;
  // Hardware-counter cell: every per-op key except branch misses (left
  // unavailable to pin the only-available-events rule) plus a multiplexed
  // scale factor.
  c2.has_perf = true;
  c2.perf.ops = 4000;
  c2.perf.scopes = 2;
  using evq::perf::Event;
  auto set_event = [&](Event e, std::uint64_t total) {
    c2.perf.value[static_cast<std::size_t>(e)] = total;
    c2.perf.available[static_cast<std::size_t>(e)] = true;
  };
  set_event(Event::kCycles, 12000000);
  set_event(Event::kInstructions, 8000000);
  set_event(Event::kL1dMisses, 40000);
  set_event(Event::kLlcMisses, 8000);
  set_event(Event::kContextSwitches, 4);
  c2.perf.worst_mux_scale = 0.8;
  plain.cells.push_back(c2);
  r.series.push_back(plain);

  r.perf.enabled = true;
  r.perf.backend = "mock";
  r.perf.available = true;
  r.perf.reason = "";

  evq::telemetry::QueueCounters tq;
  tq.queue = "algo-a";
  tq.counters[evq::telemetry::Counter::kPushOk] = 4000;
  tq.counters[evq::telemetry::Counter::kPopOk] = 4000;
  tq.counters[evq::telemetry::Counter::kSlotScFail] = 12;
  tq.has_depth = true;
  tq.depth = 3;
  r.telemetry.push_back(tq);
  return r;
}

TEST(BenchJson, GoldenFilePinsSchemaV2) {
  BenchHostInfo host;
  host.hardware_concurrency = 8;
  host.compiler = "test-compiler 1.0";
  host.build = "Test";
  host.timestamp = "";  // omitted: keeps the document deterministic

  const ScenarioResult result = synthetic_result();
  CliOptions opts;
  const std::string doc = bench_results_to_json(host, {result}, {opts});

  const std::string golden_path = std::string(EVQ_TEST_GOLDEN_DIR) + "/bench_schema_v2.json";
  if (std::getenv("EVQ_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path);
    ASSERT_TRUE(out.good()) << golden_path;
    out << doc << "\n";
    GTEST_SKIP() << "regenerated " << golden_path;
  }

  std::ifstream golden(golden_path);
  ASSERT_TRUE(golden.good()) << "missing golden file; see this test's header comment";
  std::stringstream want;
  want << golden.rdbuf();
  // The golden file ends with a trailing newline (politeness to editors);
  // the serializer's string does not.
  std::string expected = want.str();
  if (!expected.empty() && expected.back() == '\n') {
    expected.pop_back();
  }
  EXPECT_EQ(doc, expected)
      << "JSON schema drifted. If intentional: bump kBenchJsonSchemaVersion, "
         "regenerate tests/golden/bench_schema_v2.json, and update "
         "scripts/bench_diff.py.";
  EXPECT_EQ(kBenchJsonSchemaVersion, 2);
}

TEST(BenchJson, GoldenPinsPerfSections) {
  // Belt and braces on top of the byte-for-byte golden: the perf keys the
  // python consumers join on must exist under their exact names, and the
  // deliberately-unavailable event (branch misses) must NOT appear.
  BenchHostInfo host;
  const std::string doc = bench_results_to_json(host, {synthetic_result()}, {CliOptions{}});
  EXPECT_NE(doc.find("\"perf\":{\"ops\":4000"), std::string::npos);
  EXPECT_NE(doc.find("\"cycles_per_op\":3000"), std::string::npos);
  EXPECT_NE(doc.find("\"ipc\":"), std::string::npos);
  EXPECT_NE(doc.find("\"llc_miss_per_op\":2"), std::string::npos);
  EXPECT_NE(doc.find("\"mux_scale\":0.8"), std::string::npos);
  EXPECT_EQ(doc.find("branch_miss_per_op"), std::string::npos);
  EXPECT_NE(doc.find("\"perf\":{\"backend\":\"mock\",\"available\":true,\"reason\":\"\"}"),
            std::string::npos);
}

TEST(BenchJson, TimestampAppearsWhenSet) {
  BenchHostInfo host = current_host_info();
  EXPECT_GT(host.hardware_concurrency, 0u);
  EXPECT_FALSE(host.timestamp.empty());
  const std::string doc = bench_results_to_json(host, {}, {});
  EXPECT_NE(doc.find("\"timestamp\":"), std::string::npos);
  EXPECT_NE(doc.find("\"schema_version\":2"), std::string::npos);
  EXPECT_NE(doc.find("\"scenarios\":[]"), std::string::npos);
}

TEST(BenchJson, EscapesControlAndQuoteCharacters) {
  BenchHostInfo host;
  host.compiler = "a\"b\\c\nd";
  host.build = "x";
  const std::string doc = bench_results_to_json(host, {}, {});
  EXPECT_NE(doc.find("a\\\"b\\\\c\\nd"), std::string::npos);
}

}  // namespace
