// Scripted fault-injection tests for the segment lifecycle races.
//
// Three adversarial schedules the segmented queue's correctness argument
// hangs on, forced deterministically with the StallGate substrate:
//
//  1. Retirement race: a pusher is parked immediately AFTER hazard-protecting
//     the tail segment and BEFORE touching its ring
//     (core.seg.push.protected). While it sleeps, the driver seals, drains
//     and retires that exact segment — many times over, so the hazard domain
//     runs real scans with the victim's protected pointer in every scan's
//     way. The retired segment must survive until the victim resumes (ASan
//     turns a violation into a hard failure), and the victim's push must
//     still land exactly once, on the live tail.
//
//  2. Stranded push: a pusher is parked between its linearizing slot commit
//     and the Tail advance (core.*.push.committed) while the driver seals
//     the ring. The frozen tail (t|CLOSED) makes the committed item
//     permanently invisible, so the engine must take the item back and
//     report the push FAILED — the caller keeps ownership and the sealed
//     ring stays empty.
//
//  3. SCQ pre-seal straggler vs. finalize: a pusher is parked between its aq
//     ticket FAA and its entry-install CAS (core.scq.aq.enq.reserved) while
//     the ring carries a stale NEGATIVE dequeue threshold (the state an
//     earlier empty phase leaves behind, under which dequeue ⊥-fast-paths
//     without claiming a head ticket). The seal + recheck must still be
//     final: close() re-arms the threshold to 3n−1 (LSCQ's finalize), so the
//     post-seal probe drives Head past the straggler's ticket and bumps its
//     entry — when the straggler resumes, its install condition can never
//     hold and its push fails instead of landing in a retired segment.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "evq/core/cas_array_queue.hpp"
#include "evq/core/llsc_array_queue.hpp"
#include "evq/core/scq_queue.hpp"
#include "evq/core/segmented_queue.hpp"
#include "evq/inject/inject.hpp"
#include "evq/inject/profile.hpp"
#include "evq/llsc/packed_llsc.hpp"
#include "evq/telemetry/metrics.hpp"
#include "evq/verify/fifo_checkers.hpp"

namespace {

using namespace evq;
using verify::Token;

/// Parks one producer at `stall_point`, then runs `while_parked`, then
/// releases and joins. The victim pushes `victim_tok` through `q`; the push
/// must succeed (segmented queues never fail a push) even though the segment
/// it first protected has been retired under it.
template <typename Q>
void run_retirement_race(Q& q, const char* stall_point, Token& victim_tok,
                         const std::function<void()>& while_parked) {
  inject::StallGate gate(1u << 26);
  const inject::Profile script{"scripted-seg-retire-race",
                               "park a pusher on a protected segment across its retirement",
                               /*sc_fail=*/0, 100, "",
                               /*delay=*/0, 100, 0, "",
                               /*stall=*/stall_point, inject::Role::kProducer};
  std::thread victim([&] {
    inject::ProfileInjector injector(script, /*seed=*/1, /*thread_id=*/0,
                                     inject::Role::kProducer, &gate);
    inject::ScopedInjector install(injector);
    auto h = q.handle();
    EXPECT_TRUE(q.try_push(h, &victim_tok));
  });
  for (int i = 0; i < 1 << 26 && !gate.parked(); ++i) {
    std::this_thread::yield();
  }
  ASSERT_TRUE(gate.parked()) << "victim never reached " << stall_point;
  while_parked();
  gate.release();
  victim.join();
}

/// Driver-side churn: each cycle overfills the tail segment (forcing a
/// seal + append) and drains it back out (forcing the drained segment's
/// unlink + retire). `segment_capacity` + 1 items per cycle.
template <typename Q>
void churn_segments(Q& q, std::size_t segment_capacity, int cycles) {
  auto h = q.handle();
  const std::size_t per_cycle = segment_capacity + 1;
  std::vector<Token> arena(per_cycle);
  for (int cycle = 0; cycle < cycles; ++cycle) {
    for (auto& tok : arena) {
      ASSERT_TRUE(q.try_push(h, &tok)) << "churn push, cycle " << cycle;
    }
    for (std::size_t i = 0; i < per_cycle; ++i) {
      ASSERT_NE(q.try_pop(h), nullptr) << "churn pop, cycle " << cycle;
    }
  }
}

TEST(SegmentRetirementRace, HpProtectedSegmentSurvivesRetirementStorm) {
  SegmentedQueue<ScqQueue<Token>> q(4, "race-seg-scq-hp");
  Token victim_tok;
  victim_tok.producer = 99;
  constexpr int kCycles = 32;
  run_retirement_race(q, seg_detail::kSegPushProtected, victim_tok, [&] {
    // 32 seal/drain/retire cycles: the first one retires the exact segment
    // the victim protects; the rest push the domain past its scan threshold
    // repeatedly, so the protected segment survives REAL scans, not just an
    // idle retired list.
    churn_segments(q, q.segment_capacity(), kCycles);
#if EVQ_TELEMETRY
    EXPECT_GE(q.metrics().value(telemetry::Counter::kSegRetire),
              static_cast<std::uint64_t>(kCycles));
#endif
  });
  // The victim's push must have landed exactly once, after the churn.
  auto h = q.handle();
  EXPECT_EQ(q.try_pop(h), &victim_tok);
  EXPECT_EQ(q.try_pop(h), nullptr);
  EXPECT_LE(q.segment_count(), 2u);
}

TEST(SegmentRetirementRace, HpRaceOnCasEngineSegments) {
  SegmentedQueue<CasArrayQueue<Token>> q(4, "race-seg-cas-hp");
  Token victim_tok;
  run_retirement_race(q, seg_detail::kSegPushProtected, victim_tok,
                      [&] { churn_segments(q, q.segment_capacity(), 24); });
  auto h = q.handle();
  EXPECT_EQ(q.try_pop(h), &victim_tok);
  EXPECT_EQ(q.try_pop(h), nullptr);
}

TEST(SegmentRetirementRace, EbrPinnedReaderBlocksReclamationSafely) {
  // The EBR flavour of the same schedule: the parked victim holds a PINNED
  // epoch record, so no retired segment may be freed while it sleeps — the
  // churn piles retirements into the buckets instead of freeing under the
  // victim. Conservation afterwards proves nothing was freed early.
  SegmentedQueue<ScqQueue<Token>, EbrSegmentDomain> q(4, "race-seg-scq-ebr");
  Token victim_tok;
  run_retirement_race(q, seg_detail::kSegPushProtected, victim_tok,
                      [&] { churn_segments(q, q.segment_capacity(), 16); });
  auto h = q.handle();
  EXPECT_EQ(q.try_pop(h), &victim_tok);
  EXPECT_EQ(q.try_pop(h), nullptr);
}

// ---------------------------------------------------------------------------
// Stranded push: seal wins against a committed-but-unpublished push
// ---------------------------------------------------------------------------

template <typename Q>
void run_stranded_push(Q& q, const char* committed_point) {
  inject::StallGate gate(1u << 26);
  const inject::Profile script{"scripted-stranded-push",
                               "park a pusher between slot commit and Tail advance, then seal",
                               /*sc_fail=*/0, 100, "",
                               /*delay=*/0, 100, 0, "",
                               /*stall=*/committed_point, inject::Role::kProducer};
  Token stranded;
  std::atomic<bool> push_result{true};
  std::thread victim([&] {
    inject::ProfileInjector injector(script, /*seed=*/1, /*thread_id=*/0,
                                     inject::Role::kProducer, &gate);
    inject::ScopedInjector install(injector);
    auto h = q.handle();
    push_result.store(q.try_push(h, &stranded), std::memory_order_release);
  });
  for (int i = 0; i < 1 << 26 && !gate.parked(); ++i) {
    std::this_thread::yield();
  }
  ASSERT_TRUE(gate.parked()) << "victim never reached " << committed_point;
  // The victim's item is committed in the array but Tail has not moved: the
  // seal must freeze the tail at t|CLOSED, stranding the commit.
  EXPECT_TRUE(q.close());
  gate.release();
  victim.join();

  // The engine detected the frozen tail, took the item back and reported
  // failure — the sealed ring must be observably EMPTY, not holding a ghost.
  EXPECT_FALSE(push_result.load(std::memory_order_acquire))
      << "a push stranded by a seal must report failure (caller keeps the node)";
  auto h = q.handle();
  EXPECT_EQ(q.try_pop(h), nullptr) << "the reverted item must never become visible";
  EXPECT_TRUE(q.closed());
}

TEST(StrandedPush, SealRevertsCommittedPushOnCasEngine) {
  CasArrayQueue<Token> q(4);
  run_stranded_push(q, CasSlotPolicy<Token>::kPushCommitted);
}

TEST(StrandedPush, SealRevertsCommittedPushOnLlscEngine) {
  LlscArrayQueue<Token, llsc::PackedLlsc> q(4);
  run_stranded_push(q, LlscSlotPolicy<Token, llsc::PackedLlsc>::kPushCommitted);
}

// ---------------------------------------------------------------------------
// SCQ pre-seal straggler: close() must re-arm the threshold (LSCQ finalize)
// ---------------------------------------------------------------------------

/// Parks one producer at the aq FAA→entry-CAS window of `q`, then runs
/// `while_parked`, then releases and joins, reporting the victim's push
/// result through `push_result`.
template <typename Q>
void park_aq_straggler(Q& q, Token& straggler_tok, std::atomic<bool>& push_result,
                       const std::function<void()>& while_parked) {
  inject::StallGate gate(1u << 26);
  const inject::Profile script{"scripted-scq-preseal-straggler",
                               "park a pusher between its aq ticket FAA and its entry CAS",
                               /*sc_fail=*/0, 100, "",
                               /*delay=*/0, 100, 0, "",
                               /*stall=*/"core.scq.aq.enq.reserved", inject::Role::kProducer};
  std::thread straggler([&] {
    inject::ProfileInjector injector(script, /*seed=*/1, /*thread_id=*/0,
                                     inject::Role::kProducer, &gate);
    inject::ScopedInjector install(injector);
    auto h = q.handle();
    push_result.store(q.try_push(h, &straggler_tok), std::memory_order_release);
  });
  for (int i = 0; i < 1 << 26 && !gate.parked(); ++i) {
    std::this_thread::yield();
  }
  ASSERT_TRUE(gate.parked()) << "straggler never reached core.scq.aq.enq.reserved";
  while_parked();
  gate.release();
  straggler.join();
}

TEST(ScqSealFinalize, StaleThresholdStragglerCannotInstallAfterFinalBottom) {
  // The reviewer-grade schedule the threshold re-arm in ScqRing::close()
  // exists for. aq is constructed empty with threshold −1 — exactly the
  // stale negative state under which dequeue() ⊥-fast-paths WITHOUT
  // claiming a head ticket. Without the finalize re-arm, both post-seal
  // probes below would echo that stale ⊥ while Head never advances past the
  // straggler's ticket, the "segment" would be declared finally empty and
  // retired, and the resumed straggler would install into it and report
  // success — a lost item.
  ScqQueue<Token> q(4, "scq-seal-finalize");
  ASSERT_LT(q.alloc_ring().threshold(), 0)
      << "precondition: fresh aq must carry the stale-negative-threshold shape";

  Token straggler_tok;
  std::atomic<bool> push_result{true};
  auto h = q.handle();
  park_aq_straggler(q, straggler_tok, push_result, [&] {
    // The straggler holds aq ticket 0: FAA done, no entry installed. Run the
    // segmented facade's exact retire decision: seal, probe, re-seal
    // (idempotent, re-arms again), probe — the second ⊥ is what a segment
    // owner unlinks and retires on.
    q.close();
    EXPECT_EQ(q.try_pop(h), nullptr)
        << "post-seal probe must not surface a half-pushed item";
    EXPECT_GE(q.alloc_ring().threshold(), 0)
        << "close() must have re-armed the dequeue threshold (LSCQ finalize)";
    q.close();
    EXPECT_EQ(q.try_pop(h), nullptr);
  });

  // The full-strength post-seal probes drove Head past ticket 0 and bumped
  // its entry, so the straggler's install condition failed and its retaken
  // ticket carried the CLOSED bit: the push must report FAILURE (the caller
  // keeps the node and retries on a live segment — here, nowhere).
  EXPECT_FALSE(push_result.load(std::memory_order_acquire))
      << "a straggler beaten by the finalize must fail its push, not install "
         "into a ring already declared finally empty";
  EXPECT_EQ(q.try_pop(h), nullptr) << "nothing may materialize after the final ⊥";
  EXPECT_TRUE(q.closed());
}

TEST(ScqSealFinalize, SegmentedSealDrainRetireAcrossParkedAqTicket) {
  // End-to-end flavour: the straggler parks inside segment 1's aq window;
  // the driver then forces the full seal + append + drain + retire of that
  // segment under it. The resumed straggler must observe the seal, fail the
  // ring push, and land its item exactly once on the live tail segment.
  SegmentedQueue<ScqQueue<Token>> q(4, "race-seg-scq-straggler");
  Token straggler_tok;
  straggler_tok.producer = 7;
  std::atomic<bool> push_result{false};
  park_aq_straggler(q, straggler_tok, push_result, [&] {
    auto h = q.handle();
    // The straggler holds one of segment 1's four free indices, so three
    // fillers install and the fourth finds the ring full: seal + append.
    std::vector<Token> fillers(4);
    for (std::uint64_t i = 0; i < fillers.size(); ++i) {
      fillers[i].seq = i;
      ASSERT_TRUE(q.try_push(h, &fillers[i]));
    }
    // Drain: the fillers come back in FIFO order (the straggler's item must
    // NOT appear — it is not linearized), and crossing the segment boundary
    // retires segment 1 via the finalize-then-recheck path.
    for (std::uint64_t i = 0; i < fillers.size(); ++i) {
      Token* out = q.try_pop(h);
      ASSERT_NE(out, nullptr);
      EXPECT_EQ(out->seq, i);
    }
    EXPECT_EQ(q.try_pop(h), nullptr)
        << "the parked straggler's item must not be visible before it resumes";
#if EVQ_TELEMETRY
    EXPECT_GE(q.metrics().value(telemetry::Counter::kSegRetire), 1u)
        << "the drain must have retired the straggler's segment";
#endif
  });

  // Segmented pushes never fail: the straggler retried onto the live tail.
  EXPECT_TRUE(push_result.load(std::memory_order_acquire));
  auto h = q.handle();
  Token* out = q.try_pop(h);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out, &straggler_tok) << "the straggler's item must land exactly once";
  EXPECT_EQ(q.try_pop(h), nullptr);
  EXPECT_LE(q.segment_count(), 2u);
}

}  // namespace
