// Scripted fault-injection tests for the segment lifecycle races.
//
// Two adversarial schedules the segmented queue's correctness argument hangs
// on, forced deterministically with the StallGate substrate:
//
//  1. Retirement race: a pusher is parked immediately AFTER hazard-protecting
//     the tail segment and BEFORE touching its ring
//     (core.seg.push.protected). While it sleeps, the driver seals, drains
//     and retires that exact segment — many times over, so the hazard domain
//     runs real scans with the victim's protected pointer in every scan's
//     way. The retired segment must survive until the victim resumes (ASan
//     turns a violation into a hard failure), and the victim's push must
//     still land exactly once, on the live tail.
//
//  2. Stranded push: a pusher is parked between its linearizing slot commit
//     and the Tail advance (core.*.push.committed) while the driver seals
//     the ring. The frozen tail (t|CLOSED) makes the committed item
//     permanently invisible, so the engine must take the item back and
//     report the push FAILED — the caller keeps ownership and the sealed
//     ring stays empty.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "evq/core/cas_array_queue.hpp"
#include "evq/core/llsc_array_queue.hpp"
#include "evq/core/scq_queue.hpp"
#include "evq/core/segmented_queue.hpp"
#include "evq/inject/inject.hpp"
#include "evq/inject/profile.hpp"
#include "evq/llsc/packed_llsc.hpp"
#include "evq/telemetry/metrics.hpp"
#include "evq/verify/fifo_checkers.hpp"

namespace {

using namespace evq;
using verify::Token;

/// Parks one producer at `stall_point`, then runs `while_parked`, then
/// releases and joins. The victim pushes `victim_tok` through `q`; the push
/// must succeed (segmented queues never fail a push) even though the segment
/// it first protected has been retired under it.
template <typename Q>
void run_retirement_race(Q& q, const char* stall_point, Token& victim_tok,
                         const std::function<void()>& while_parked) {
  inject::StallGate gate(1u << 26);
  const inject::Profile script{"scripted-seg-retire-race",
                               "park a pusher on a protected segment across its retirement",
                               /*sc_fail=*/0, 100, "",
                               /*delay=*/0, 100, 0, "",
                               /*stall=*/stall_point, inject::Role::kProducer};
  std::thread victim([&] {
    inject::ProfileInjector injector(script, /*seed=*/1, /*thread_id=*/0,
                                     inject::Role::kProducer, &gate);
    inject::ScopedInjector install(injector);
    auto h = q.handle();
    EXPECT_TRUE(q.try_push(h, &victim_tok));
  });
  for (int i = 0; i < 1 << 26 && !gate.parked(); ++i) {
    std::this_thread::yield();
  }
  ASSERT_TRUE(gate.parked()) << "victim never reached " << stall_point;
  while_parked();
  gate.release();
  victim.join();
}

/// Driver-side churn: each cycle overfills the tail segment (forcing a
/// seal + append) and drains it back out (forcing the drained segment's
/// unlink + retire). `segment_capacity` + 1 items per cycle.
template <typename Q>
void churn_segments(Q& q, std::size_t segment_capacity, int cycles) {
  auto h = q.handle();
  const std::size_t per_cycle = segment_capacity + 1;
  std::vector<Token> arena(per_cycle);
  for (int cycle = 0; cycle < cycles; ++cycle) {
    for (auto& tok : arena) {
      ASSERT_TRUE(q.try_push(h, &tok)) << "churn push, cycle " << cycle;
    }
    for (std::size_t i = 0; i < per_cycle; ++i) {
      ASSERT_NE(q.try_pop(h), nullptr) << "churn pop, cycle " << cycle;
    }
  }
}

TEST(SegmentRetirementRace, HpProtectedSegmentSurvivesRetirementStorm) {
  SegmentedQueue<ScqQueue<Token>> q(4, "race-seg-scq-hp");
  Token victim_tok;
  victim_tok.producer = 99;
  constexpr int kCycles = 32;
  run_retirement_race(q, seg_detail::kSegPushProtected, victim_tok, [&] {
    // 32 seal/drain/retire cycles: the first one retires the exact segment
    // the victim protects; the rest push the domain past its scan threshold
    // repeatedly, so the protected segment survives REAL scans, not just an
    // idle retired list.
    churn_segments(q, q.segment_capacity(), kCycles);
#if EVQ_TELEMETRY
    EXPECT_GE(q.metrics().value(telemetry::Counter::kSegRetire),
              static_cast<std::uint64_t>(kCycles));
#endif
  });
  // The victim's push must have landed exactly once, after the churn.
  auto h = q.handle();
  EXPECT_EQ(q.try_pop(h), &victim_tok);
  EXPECT_EQ(q.try_pop(h), nullptr);
  EXPECT_LE(q.segment_count(), 2u);
}

TEST(SegmentRetirementRace, HpRaceOnCasEngineSegments) {
  SegmentedQueue<CasArrayQueue<Token>> q(4, "race-seg-cas-hp");
  Token victim_tok;
  run_retirement_race(q, seg_detail::kSegPushProtected, victim_tok,
                      [&] { churn_segments(q, q.segment_capacity(), 24); });
  auto h = q.handle();
  EXPECT_EQ(q.try_pop(h), &victim_tok);
  EXPECT_EQ(q.try_pop(h), nullptr);
}

TEST(SegmentRetirementRace, EbrPinnedReaderBlocksReclamationSafely) {
  // The EBR flavour of the same schedule: the parked victim holds a PINNED
  // epoch record, so no retired segment may be freed while it sleeps — the
  // churn piles retirements into the buckets instead of freeing under the
  // victim. Conservation afterwards proves nothing was freed early.
  SegmentedQueue<ScqQueue<Token>, EbrSegmentDomain> q(4, "race-seg-scq-ebr");
  Token victim_tok;
  run_retirement_race(q, seg_detail::kSegPushProtected, victim_tok,
                      [&] { churn_segments(q, q.segment_capacity(), 16); });
  auto h = q.handle();
  EXPECT_EQ(q.try_pop(h), &victim_tok);
  EXPECT_EQ(q.try_pop(h), nullptr);
}

// ---------------------------------------------------------------------------
// Stranded push: seal wins against a committed-but-unpublished push
// ---------------------------------------------------------------------------

template <typename Q>
void run_stranded_push(Q& q, const char* committed_point) {
  inject::StallGate gate(1u << 26);
  const inject::Profile script{"scripted-stranded-push",
                               "park a pusher between slot commit and Tail advance, then seal",
                               /*sc_fail=*/0, 100, "",
                               /*delay=*/0, 100, 0, "",
                               /*stall=*/committed_point, inject::Role::kProducer};
  Token stranded;
  std::atomic<bool> push_result{true};
  std::thread victim([&] {
    inject::ProfileInjector injector(script, /*seed=*/1, /*thread_id=*/0,
                                     inject::Role::kProducer, &gate);
    inject::ScopedInjector install(injector);
    auto h = q.handle();
    push_result.store(q.try_push(h, &stranded), std::memory_order_release);
  });
  for (int i = 0; i < 1 << 26 && !gate.parked(); ++i) {
    std::this_thread::yield();
  }
  ASSERT_TRUE(gate.parked()) << "victim never reached " << committed_point;
  // The victim's item is committed in the array but Tail has not moved: the
  // seal must freeze the tail at t|CLOSED, stranding the commit.
  EXPECT_TRUE(q.close());
  gate.release();
  victim.join();

  // The engine detected the frozen tail, took the item back and reported
  // failure — the sealed ring must be observably EMPTY, not holding a ghost.
  EXPECT_FALSE(push_result.load(std::memory_order_acquire))
      << "a push stranded by a seal must report failure (caller keeps the node)";
  auto h = q.handle();
  EXPECT_EQ(q.try_pop(h), nullptr) << "the reverted item must never become visible";
  EXPECT_TRUE(q.closed());
}

TEST(StrandedPush, SealRevertsCommittedPushOnCasEngine) {
  CasArrayQueue<Token> q(4);
  run_stranded_push(q, CasSlotPolicy<Token>::kPushCommitted);
}

TEST(StrandedPush, SealRevertsCommittedPushOnLlscEngine) {
  LlscArrayQueue<Token, llsc::PackedLlsc> q(4);
  run_stranded_push(q, LlscSlotPolicy<Token, llsc::PackedLlsc>::kPushCommitted);
}

}  // namespace
