// Model-checking tests: exhaustive interleaving exploration of the paper's
// algorithms and of deliberately weakened variants.
//
// The positive results ("no violation, search exhausted") mechanically
// verify linearizability of the step-level algorithm models on small
// configurations; the negative results reproduce the paper's Sec. 3/Sec. 5
// failure scenarios as concrete counterexample schedules found by search —
// not hand-picked interleavings.
#include <gtest/gtest.h>

#include <cstdio>

#include "evq/model/array_world.hpp"
#include "evq/model/explorer.hpp"
#include "evq/model/simcas_world.hpp"

namespace {

using namespace evq::model;

// ---------------------------------------------------------------------------
// Helper assertions
// ---------------------------------------------------------------------------

template <typename World>
ExploreResult explore_world(World world, ExploreLimits limits = {}) {
  Explorer<World> explorer(limits);
  return explorer.explore(world);
}

void expect_clean(const ExploreResult& r) {
  EXPECT_FALSE(r.violation_found) << "counterexample schedule of length "
                                  << r.counterexample.size();
  EXPECT_FALSE(r.budget_exhausted) << "state space not fully explored: raise limits";
  EXPECT_GT(r.complete_schedules, 0u);
}

void expect_violation(const ExploreResult& r) {
  ASSERT_TRUE(r.violation_found) << "expected the weakened variant to fail "
                                 << "(nodes=" << r.nodes
                                 << ", complete=" << r.complete_schedules << ")";
  EXPECT_FALSE(r.counterexample.empty());
}

// ---------------------------------------------------------------------------
// Algorithm 1 (LL/SC slots): exhaustive correctness on small configurations
// ---------------------------------------------------------------------------

TEST(ModelAlg1, TwoThreadsProducerConsumerExhaustive) {
  ArrayModelConfig cfg;
  cfg.capacity = 2;
  cfg.programs = {{push_op(10), push_op(11)}, {pop_op(), pop_op()}};
  expect_clean(explore_world(ArrayQueueWorld(cfg)));
}

TEST(ModelAlg1, TwoThreadsMixedRolesExhaustive) {
  ArrayModelConfig cfg;
  cfg.capacity = 2;
  cfg.programs = {{push_op(10), pop_op()}, {push_op(20), pop_op()}};
  expect_clean(explore_world(ArrayQueueWorld(cfg)));
}

TEST(ModelAlg1, ThreeThreadsOneOpEachExhaustive) {
  ArrayModelConfig cfg;
  cfg.capacity = 2;
  cfg.initial_items = {1};
  cfg.programs = {{push_op(10)}, {pop_op()}, {pop_op()}};
  expect_clean(explore_world(ArrayQueueWorld(cfg)));
}

TEST(ModelAlg1, FullQueueBoundaryExhaustive) {
  ArrayModelConfig cfg;
  cfg.capacity = 2;
  cfg.initial_items = {1, 2};
  cfg.programs = {{push_op(10)}, {pop_op(), push_op(20)}};
  expect_clean(explore_world(ArrayQueueWorld(cfg)));
}

TEST(ModelAlg1, WraparoundExhaustive) {
  ArrayModelConfig cfg;
  cfg.capacity = 2;
  cfg.programs = {{push_op(10), pop_op(), push_op(11), pop_op()},
                  {push_op(20), pop_op()}};
  expect_clean(explore_world(ArrayQueueWorld(cfg)));
}

// ---------------------------------------------------------------------------
// The weakened variants: the paper's Sec. 3 scenarios, found by search
// ---------------------------------------------------------------------------

TEST(ModelNaive, DataAbaFoundByExploration) {
  // Sec. 3's 2-slot example: plain-CAS slots let a stalled dequeuer remove
  // the WRONG instance of a value after drain-and-refill reuses it.
  ArrayModelConfig cfg;
  cfg.capacity = 2;
  cfg.slot_protocol = SlotProtocol::kPlainCas;
  cfg.initial_items = {1};
  cfg.programs = {{pop_op()}, {pop_op(), push_op(2), push_op(1), pop_op(), pop_op()}};
  expect_violation(explore_world(ArrayQueueWorld(cfg)));
}

TEST(ModelAlg1, DataAbaScenarioIsCleanWithLlscSlots) {
  // The exact configuration above, with Algorithm 1's slot protocol.
  ArrayModelConfig cfg;
  cfg.capacity = 2;
  cfg.slot_protocol = SlotProtocol::kLlsc;
  cfg.initial_items = {1};
  cfg.programs = {{pop_op()}, {pop_op(), push_op(2), push_op(1), pop_op(), pop_op()}};
  expect_clean(explore_world(ArrayQueueWorld(cfg)));
}

TEST(ModelTwoNull, DataAbaRemainsWithTwoNulls) {
  // Tsigas–Zhang's two nulls fix null-ABA but NOT data-ABA — the same
  // value-reuse schedule must still fail (values > 2 to clear the null
  // encodings).
  ArrayModelConfig cfg;
  cfg.capacity = 2;
  cfg.slot_protocol = SlotProtocol::kTwoNull;
  cfg.initial_items = {7};
  cfg.programs = {{pop_op()}, {pop_op(), push_op(8), push_op(7), pop_op(), pop_op()}};
  expect_violation(explore_world(ArrayQueueWorld(cfg)));
}

TEST(ModelNaive, NullAbaFoundByExploration) {
  // Sec. 3's null-ABA: a stalled enqueuer inserts into a slot that was
  // USED and drained while it slept (first interval), losing the item.
  ArrayModelConfig cfg;
  cfg.capacity = 2;
  cfg.slot_protocol = SlotProtocol::kPlainCas;
  cfg.programs = {{push_op(5)}, {push_op(6), pop_op(), pop_op(), pop_op()}};
  expect_violation(explore_world(ArrayQueueWorld(cfg)));
}

TEST(ModelTwoNull, NullAbaScenarioIsCleanWithTwoNulls) {
  // The same schedule against the two-null protocol: the stale insert CAS
  // expects the wrong null and fails — Tsigas–Zhang's fix, verified.
  ArrayModelConfig cfg;
  cfg.capacity = 2;
  cfg.slot_protocol = SlotProtocol::kTwoNull;
  cfg.programs = {{push_op(5)}, {push_op(6), pop_op(), pop_op(), pop_op()}};
  expect_clean(explore_world(ArrayQueueWorld(cfg)));
}

TEST(ModelAlg1, NullAbaScenarioIsCleanWithLlscSlots) {
  ArrayModelConfig cfg;
  cfg.capacity = 2;
  cfg.slot_protocol = SlotProtocol::kLlsc;
  cfg.programs = {{push_op(5)}, {push_op(6), pop_op(), pop_op(), pop_op()}};
  expect_clean(explore_world(ArrayQueueWorld(cfg)));
}

TEST(ModelWrappedIndex, Fig1IndexAbaFoundByExploration) {
  // Fig. 1: bounded (wrapping) index counters. The counter here wraps mod
  // 2*capacity — the smallest honest model of wrapped indices that still
  // distinguishes full from empty. LL/SC slots isolate the INDEX bug.
  ArrayModelConfig cfg;
  cfg.capacity = 2;
  cfg.slot_protocol = SlotProtocol::kLlsc;
  cfg.index_modulus = 4;
  cfg.programs = {{push_op(10)},
                  {push_op(20), pop_op(), pop_op(), push_op(21), pop_op(), push_op(22),
                   pop_op(), pop_op()}};
  ExploreLimits limits;
  limits.max_depth = 200;
  expect_violation(explore_world(ArrayQueueWorld(cfg), limits));
}

TEST(ModelAlg1, Fig1ScheduleIsCleanWithMonotoneCounters) {
  // Identical programs with the paper's full-width monotone counters.
  ArrayModelConfig cfg;
  cfg.capacity = 2;
  cfg.slot_protocol = SlotProtocol::kLlsc;
  cfg.index_modulus = 0;
  cfg.programs = {{push_op(10)},
                  {push_op(20), pop_op(), pop_op(), push_op(21), pop_op(), push_op(22),
                   pop_op(), pop_op()}};
  ExploreLimits limits;
  limits.max_depth = 200;
  expect_clean(explore_world(ArrayQueueWorld(cfg), limits));
}

TEST(ModelNoRecheck, Fig4StaleIndexFoundByExploration) {
  // Omitting the D10 "if (h == Head)" re-check: a stalled dequeuer acts on
  // a stale index after the array wrapped (Fig. 4) and removes a non-oldest
  // item. Needs head to lap, so thread B cycles the queue once.
  ArrayModelConfig cfg;
  cfg.capacity = 2;
  cfg.slot_protocol = SlotProtocol::kLlsc;
  cfg.index_recheck = false;
  cfg.initial_items = {1, 2};
  cfg.programs = {{pop_op()},
                  {pop_op(), pop_op(), push_op(3), push_op(4), pop_op(), pop_op()}};
  ExploreLimits limits;
  limits.max_depth = 200;
  expect_violation(explore_world(ArrayQueueWorld(cfg), limits));
}

TEST(ModelAlg1, Fig4ScheduleIsCleanWithRecheck) {
  ArrayModelConfig cfg;
  cfg.capacity = 2;
  cfg.slot_protocol = SlotProtocol::kLlsc;
  cfg.index_recheck = true;
  cfg.initial_items = {1, 2};
  cfg.programs = {{pop_op()},
                  {pop_op(), pop_op(), push_op(3), push_op(4), pop_op(), pop_op()}};
  ExploreLimits limits;
  limits.max_depth = 200;
  expect_clean(explore_world(ArrayQueueWorld(cfg), limits));
}

// ---------------------------------------------------------------------------
// Algorithm 2 (simulated LL/SC): exhaustive correctness + the Sec. 5 ABA
// ---------------------------------------------------------------------------

TEST(ModelAlg2, TwoThreadsProducerConsumerExhaustive) {
  SimCasModelConfig cfg;
  cfg.capacity = 2;
  cfg.programs = {{push_op(10), push_op(11)}, {pop_op(), pop_op()}};
  expect_clean(explore_world(SimCasQueueWorld(cfg)));
}

TEST(ModelAlg2, TwoThreadsMixedRolesExhaustive) {
  SimCasModelConfig cfg;
  cfg.capacity = 2;
  cfg.programs = {{push_op(10), pop_op()}, {push_op(20), pop_op()}};
  expect_clean(explore_world(SimCasQueueWorld(cfg)));
}

TEST(ModelAlg2, ThreeThreadsOneOpEachExhaustive) {
  SimCasModelConfig cfg;
  cfg.capacity = 2;
  cfg.initial_items = {1};
  cfg.programs = {{push_op(10)}, {pop_op()}, {pop_op()}};
  expect_clean(explore_world(SimCasQueueWorld(cfg)));
}

TEST(ModelAlg2, ReservationTakeoverScheduleExhaustive) {
  // Head-on reservation contention: both threads repeatedly pop the same
  // slot region while a pusher refills — maximal tag-takeover traffic.
  SimCasModelConfig cfg;
  cfg.capacity = 2;
  cfg.initial_items = {1, 2};
  cfg.programs = {{pop_op(), push_op(7)}, {pop_op(), pop_op()}};
  expect_clean(explore_world(SimCasQueueWorld(cfg)));
}

TEST(ModelAlg2PaperExact, Sec5WindowRaceFoundByExploration) {
  // THE ERRATUM (DESIGN.md): the paper's Fig. 5 as published — refcount ON
  // but no re-validation of the cell between the L7 FAA and the L8 node
  // read — is racy. A reader preempted in the L5->L7 window FAAs too late
  // to stop the owner's ReRegister; if the owner's next reservation lands
  // on the same cell, the reader can adopt a node value belonging to a
  // DIFFERENT cell and still win its L12 CAS. The explorer finds a concrete
  // item-destroying schedule even in this 2-thread, 2-ops-each config.
  SimCasModelConfig cfg;
  cfg.capacity = 2;
  cfg.use_refcount = true;
  cfg.validate_after_faa = false;  // published pseudocode, verbatim
  cfg.programs = {{push_op(10), pop_op()}, {push_op(20), pop_op()}};
  expect_violation(explore_world(SimCasQueueWorld(cfg)));
}

TEST(ModelAlg2, Sec5WindowScheduleIsCleanWithValidation) {
  // Identical programs with the repaired protocol (validate after FAA).
  SimCasModelConfig cfg;
  cfg.capacity = 2;
  cfg.use_refcount = true;
  cfg.validate_after_faa = true;
  cfg.programs = {{push_op(10), pop_op()}, {push_op(20), pop_op()}};
  expect_clean(explore_world(SimCasQueueWorld(cfg)));
}

TEST(ModelAlg2NoRefcount, Sec5AbaFoundByExploration) {
  // The Sec. 5 scenario: without the refcount/ReRegister discipline, thread
  // B reads A's variable, stalls, A finishes and REUSES the same variable
  // for a new reservation on the same slot; B's stale takeover then
  // resurrects an already-dequeued value.
  SimCasModelConfig cfg;
  cfg.capacity = 2;
  cfg.use_refcount = false;
  cfg.initial_items = {1, 2};
  cfg.programs = {{pop_op(), push_op(7)}, {pop_op(), pop_op(), pop_op()}};
  ExploreLimits limits;
  limits.max_depth = 200;
  expect_violation(explore_world(SimCasQueueWorld(cfg), limits));
}

TEST(ModelAlg2, Sec5ScheduleIsCleanWithRefcount) {
  // Identical programs with the full Fig. 5 protocol.
  SimCasModelConfig cfg;
  cfg.capacity = 2;
  cfg.use_refcount = true;
  cfg.initial_items = {1, 2};
  cfg.programs = {{pop_op(), push_op(7)}, {pop_op(), pop_op(), pop_op()}};
  ExploreLimits limits;
  limits.max_depth = 200;
  expect_clean(explore_world(SimCasQueueWorld(cfg), limits));
}

// ---------------------------------------------------------------------------
// Deeper configurations (state-space growth is tamed by the explorer's
// completion-rank memoization; each of these still finishes in seconds)
// ---------------------------------------------------------------------------

TEST(ModelAlg1, ThreeThreadsTwoOpsEachExhaustive) {
  ArrayModelConfig cfg;
  cfg.capacity = 2;
  cfg.programs = {{push_op(10), pop_op()}, {push_op(20), pop_op()}, {push_op(30), pop_op()}};
  ExploreLimits limits;
  limits.max_nodes = 30'000'000;
  expect_clean(explore_world(ArrayQueueWorld(cfg), limits));
}

TEST(ModelAlg1, CapacityFourBoundaryExhaustive) {
  ArrayModelConfig cfg;
  cfg.capacity = 4;
  cfg.initial_items = {1, 2, 3};
  cfg.programs = {{push_op(10), push_op(11)}, {pop_op(), pop_op(), pop_op()}};
  expect_clean(explore_world(ArrayQueueWorld(cfg)));
}

TEST(ModelAlg2, ThreeThreadsMixedExhaustive) {
  SimCasModelConfig cfg;
  cfg.capacity = 2;
  cfg.initial_items = {1};
  cfg.programs = {{push_op(10)}, {pop_op(), pop_op()}, {push_op(30)}};
  ExploreLimits limits;
  limits.max_nodes = 30'000'000;
  expect_clean(explore_world(SimCasQueueWorld(cfg), limits));
}

TEST(ModelAlg2, FullBoundaryExhaustive) {
  SimCasModelConfig cfg;
  cfg.capacity = 2;
  cfg.initial_items = {1, 2};
  cfg.programs = {{push_op(10)}, {pop_op(), push_op(20)}};
  expect_clean(explore_world(SimCasQueueWorld(cfg)));
}

// ---------------------------------------------------------------------------
// Explorer mechanics
// ---------------------------------------------------------------------------

TEST(ModelExplorer, SingleThreadHasExactlyOneSchedule) {
  ArrayModelConfig cfg;
  cfg.capacity = 2;
  cfg.programs = {{push_op(10), pop_op()}};
  const ExploreResult r = explore_world(ArrayQueueWorld(cfg));
  EXPECT_FALSE(r.violation_found);
  EXPECT_EQ(r.complete_schedules, 1u);
  EXPECT_EQ(r.truncated_schedules, 0u);
}

TEST(ModelExplorer, NodeBudgetIsHonored) {
  ArrayModelConfig cfg;
  cfg.capacity = 2;
  cfg.programs = {{push_op(10), pop_op(), push_op(11), pop_op()},
                  {push_op(20), pop_op(), push_op(21), pop_op()}};
  ExploreLimits limits;
  limits.max_nodes = 50;  // far too small to finish
  const ExploreResult r = explore_world(ArrayQueueWorld(cfg), limits);
  EXPECT_TRUE(r.budget_exhausted);
  EXPECT_LE(r.nodes, 50u);
}

TEST(ModelExplorer, CounterexampleScheduleReplaysToViolation) {
  // The reported schedule must actually drive a fresh world to completion.
  ArrayModelConfig cfg;
  cfg.capacity = 2;
  cfg.slot_protocol = SlotProtocol::kPlainCas;
  cfg.initial_items = {1};
  cfg.programs = {{pop_op()}, {pop_op(), push_op(2), push_op(1), pop_op(), pop_op()}};
  const ExploreResult r = explore_world(ArrayQueueWorld(cfg));
  ASSERT_TRUE(r.violation_found);
  ArrayQueueWorld replay(cfg);
  for (std::uint8_t tid : r.counterexample) {
    ASSERT_FALSE(replay.thread_done(tid));
    replay.step(tid);
  }
  EXPECT_TRUE(replay.all_done());
  evq::verify::LinearizabilityChecker checker(replay.spec_capacity());
  EXPECT_FALSE(checker.check(replay.history()));
}

}  // namespace
