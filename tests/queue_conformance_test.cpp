// Cross-implementation conformance suite: every queue in the study must
// satisfy the same FIFO contract. Typed tests instantiate the full matrix:
// basic semantics, boundary behaviour, MPMC conservation, per-producer
// order, tiny-capacity ABA hammering and oversubscribed stress.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "evq/baselines/ms_ebr_queue.hpp"
#include "evq/baselines/ms_hp_queue.hpp"
#include "evq/baselines/ms_pool_queue.hpp"
#include "evq/baselines/ms_sim_queue.hpp"
#include "evq/baselines/mutex_queue.hpp"
#include "evq/baselines/shann_queue.hpp"
#include "evq/baselines/tsigas_zhang_queue.hpp"
#include "evq/core/cas_array_queue.hpp"
#include "evq/core/combining_queue.hpp"
#include "evq/core/llsc_array_queue.hpp"
#include "evq/core/scq_queue.hpp"
#include "evq/core/segmented_queue.hpp"
#include "evq/harness/queue_registry.hpp"
#include "evq/llsc/packed_llsc.hpp"
#include "evq/llsc/versioned_llsc.hpp"
#include "evq/llsc/weak_llsc.hpp"
#include "evq/verify/fifo_checkers.hpp"
#include "torture_queues.hpp"

namespace {

using namespace evq;
using verify::CheckResult;
using verify::ConsumerLog;
using verify::Token;

// Sorted-scan MS-HP as its own type so the typed suite covers it.
struct MsHpSortedQueue : baselines::MsHpQueue<Token> {
  MsHpSortedQueue() : MsHpQueue(hazard::ScanMode::kSorted, 4) {}
};

template <typename T>
using WeakSlot = llsc::WeakLlsc<llsc::VersionedLlsc<T>, 20>;

/// Uniform construction: bounded queues get the capacity, unbounded ignore it.
template <typename Q>
Q* make_queue(std::size_t capacity) {
  if constexpr (std::is_constructible_v<Q, std::size_t>) {
    return new Q(capacity);
  } else {
    return new Q();
  }
}

template <typename Q>
class QueueConformanceTest : public ::testing::Test {};

// Contention-management variants: ExpBackoff only changes how retry loops
// wait, so the paper-faithful semantics must survive the typed suite intact.
using LlscBackoffQueue = LlscArrayQueue<Token, llsc::PackedLlsc, ExpBackoff>;
using CasBackoffQueue = CasArrayQueue<Token, ExpBackoff>;

using AllQueues = ::testing::Types<LlscArrayQueue<Token, llsc::VersionedLlsc>,
                                   LlscArrayQueue<Token, llsc::PackedLlsc>,
                                   LlscArrayQueue<Token, WeakSlot>,
                                   LlscBackoffQueue,
                                   CasArrayQueue<Token>,
                                   CasBackoffQueue,
                                   baselines::MsHpQueue<Token>,
                                   MsHpSortedQueue,
                                   baselines::MsPoolQueue<Token>,
                                   baselines::MsEbrQueue<Token>,
                                   baselines::MsSimQueue<Token>,
                                   baselines::ShannQueue<Token>,
                                   // Safe here: conformance tokens are
                                   // pushed exactly once, so Tsigas-Zhang's
                                   // data-ABA assumption is never stressed.
                                   baselines::TsigasZhangQueue<Token>,
                                   baselines::MutexQueue<Token>,
                                   // SCQ generation: FAA tickets + cycle tags
                                   // must honour the same exact sequential
                                   // contract as the paper rings.
                                   ScqQueue<Token>,
                                   ScqQueue<Token, ExpBackoff>,
                                   // Segmented generation: the capacity the
                                   // suite passes sizes one SEGMENT; the
                                   // queue itself is unbounded, so the
                                   // capacity-gated tests flip to their
                                   // push-always-succeeds duals.
                                   SegmentedQueue<CasArrayQueue<Token>>,
                                   SegmentedQueue<ScqQueue<Token>>,
                                   SegmentedQueue<ScqQueue<Token>, EbrSegmentDomain>,
                                   // Combining facades: announced ops completed
                                   // by peer combiners must honour the exact
                                   // same contract as direct ring ops.
                                   CombiningQueue<CasArrayQueue<Token>>,
                                   CombiningQueue<ScqQueue<Token>>>;
TYPED_TEST_SUITE(QueueConformanceTest, AllQueues);

// ---------------------------------------------------------------------------
// Sequential contract
// ---------------------------------------------------------------------------

TYPED_TEST(QueueConformanceTest, StartsEmpty) {
  std::unique_ptr<TypeParam> q(make_queue<TypeParam>(8));
  auto h = q->handle();
  EXPECT_EQ(q->try_pop(h), nullptr);
}

TYPED_TEST(QueueConformanceTest, SequentialFifo) {
  std::unique_ptr<TypeParam> q(make_queue<TypeParam>(64));
  auto h = q->handle();
  std::vector<Token> tokens(32);
  for (std::uint64_t i = 0; i < tokens.size(); ++i) {
    tokens[i].seq = i;
    ASSERT_TRUE(q->try_push(h, &tokens[i]));
  }
  for (std::uint64_t i = 0; i < tokens.size(); ++i) {
    Token* out = q->try_pop(h);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->seq, i);
  }
  EXPECT_EQ(q->try_pop(h), nullptr);
}

TYPED_TEST(QueueConformanceTest, InterleavedPushPop) {
  std::unique_ptr<TypeParam> q(make_queue<TypeParam>(8));
  auto h = q->handle();
  std::vector<Token> tokens(6);
  for (std::uint64_t i = 0; i < 6; ++i) {
    tokens[i].seq = i;
  }
  ASSERT_TRUE(q->try_push(h, &tokens[0]));
  ASSERT_TRUE(q->try_push(h, &tokens[1]));
  EXPECT_EQ(q->try_pop(h)->seq, 0u);
  ASSERT_TRUE(q->try_push(h, &tokens[2]));
  EXPECT_EQ(q->try_pop(h)->seq, 1u);
  EXPECT_EQ(q->try_pop(h)->seq, 2u);
  EXPECT_EQ(q->try_pop(h), nullptr);
}

TYPED_TEST(QueueConformanceTest, DrainAlwaysTerminates) {
  std::unique_ptr<TypeParam> q(make_queue<TypeParam>(16));
  auto h = q->handle();
  std::vector<Token> tokens(10);
  for (auto& t : tokens) {
    ASSERT_TRUE(q->try_push(h, &t));
  }
  int popped = 0;
  while (q->try_pop(h) != nullptr) {
    ++popped;
    ASSERT_LE(popped, 10);
  }
  EXPECT_EQ(popped, 10);
}

// ---------------------------------------------------------------------------
// Concurrent contract
// ---------------------------------------------------------------------------

struct StressConfig {
  std::size_t producers;
  std::size_t consumers;
  std::uint64_t per_producer;
  std::size_t capacity;
};

/// Dedicated producers push tagged tokens; dedicated consumers log what they
/// pop; returns the consumer logs for checking.
template <typename Q>
std::vector<ConsumerLog> run_split_stress(Q& q, const StressConfig& cfg) {
  std::vector<std::vector<Token>> tokens(cfg.producers);
  for (std::size_t p = 0; p < cfg.producers; ++p) {
    tokens[p].resize(cfg.per_producer);
    for (std::uint64_t i = 0; i < cfg.per_producer; ++i) {
      tokens[p][i].producer = static_cast<std::uint32_t>(p);
      tokens[p][i].seq = i;
    }
  }
  std::vector<ConsumerLog> logs(cfg.consumers);
  std::atomic<std::uint64_t> popped{0};
  const std::uint64_t total = cfg.producers * cfg.per_producer;
  std::vector<std::thread> threads;
  for (std::size_t p = 0; p < cfg.producers; ++p) {
    threads.emplace_back([&, p] {
      auto h = q.handle();
      for (auto& tok : tokens[p]) {
        while (!q.try_push(h, &tok)) {
          std::this_thread::yield();
        }
      }
    });
  }
  for (std::size_t c = 0; c < cfg.consumers; ++c) {
    threads.emplace_back([&, c] {
      auto h = q.handle();
      logs[c].reserve(total);
      for (;;) {
        Token* tok = q.try_pop(h);
        if (tok != nullptr) {
          logs[c].push_back(*tok);
          popped.fetch_add(1);
        } else if (popped.load() >= total) {
          return;
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(popped.load(), total);
  return logs;
}

TYPED_TEST(QueueConformanceTest, MpmcConservation) {
  const StressConfig cfg{2, 2, 4000, 64};
  std::unique_ptr<TypeParam> q(make_queue<TypeParam>(cfg.capacity));
  auto logs = run_split_stress(*q, cfg);
  const std::vector<std::uint64_t> pushed(cfg.producers, cfg.per_producer);
  CheckResult conservation = verify::check_conservation(logs, pushed);
  EXPECT_TRUE(conservation.ok) << conservation.reason;
  CheckResult order = verify::check_per_producer_order(logs, cfg.producers);
  EXPECT_TRUE(order.ok) << order.reason;
}

TYPED_TEST(QueueConformanceTest, SingleConsumerSeesGaplessStreams) {
  const StressConfig cfg{3, 1, 3000, 64};
  std::unique_ptr<TypeParam> q(make_queue<TypeParam>(cfg.capacity));
  auto logs = run_split_stress(*q, cfg);
  CheckResult gapless = verify::check_single_consumer_gapless(logs[0], cfg.producers);
  EXPECT_TRUE(gapless.ok) << gapless.reason;
}

TYPED_TEST(QueueConformanceTest, TinyCapacityHammer) {
  // Capacity 2 maximizes wraparound frequency — the regime where all three
  // ABA classes of Sec. 3 would strike a naive implementation.
  const StressConfig cfg{2, 2, 3000, 2};
  std::unique_ptr<TypeParam> q(make_queue<TypeParam>(cfg.capacity));
  auto logs = run_split_stress(*q, cfg);
  const std::vector<std::uint64_t> pushed(cfg.producers, cfg.per_producer);
  CheckResult conservation = verify::check_conservation(logs, pushed);
  EXPECT_TRUE(conservation.ok) << conservation.reason;
  CheckResult order = verify::check_per_producer_order(logs, cfg.producers);
  EXPECT_TRUE(order.ok) << order.reason;
}

TYPED_TEST(QueueConformanceTest, MixedRoleThreadsConserveTokens) {
  // Every thread both produces and consumes (the paper's workload shape).
  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kPerThread = 2500;
  std::unique_ptr<TypeParam> q(make_queue<TypeParam>(kThreads * 8));
  std::vector<std::vector<Token>> tokens(kThreads);
  std::vector<ConsumerLog> logs(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    tokens[t].resize(kPerThread);
    for (std::uint64_t i = 0; i < kPerThread; ++i) {
      tokens[t][i].producer = static_cast<std::uint32_t>(t);
      tokens[t][i].seq = i;
    }
  }
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto h = q->handle();
      logs[t].reserve(kPerThread);
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        while (!q->try_push(h, &tokens[t][i])) {
          std::this_thread::yield();
        }
        Token* out = nullptr;
        while ((out = q->try_pop(h)) == nullptr) {
          std::this_thread::yield();
        }
        logs[t].push_back(*out);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  const std::vector<std::uint64_t> pushed(kThreads, kPerThread);
  CheckResult conservation = verify::check_conservation(logs, pushed);
  EXPECT_TRUE(conservation.ok) << conservation.reason;
  CheckResult order = verify::check_per_producer_order(logs, kThreads);
  EXPECT_TRUE(order.ok) << order.reason;
}

TYPED_TEST(QueueConformanceTest, BoundedQueueNeverExceedsCapacity) {
  if constexpr (BoundedPtrQueue<TypeParam>) {
    std::unique_ptr<TypeParam> q(make_queue<TypeParam>(4));
    constexpr std::size_t kThreads = 3;
    std::atomic<bool> stop{false};
    std::atomic<bool> overflow{false};
    std::atomic<std::int64_t> population{0};
    std::vector<std::vector<Token>> tokens(kThreads);
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
      tokens[t].resize(1);
      threads.emplace_back([&, t] {
        auto h = q->handle();
        while (!stop.load()) {
          if (q->try_push(h, &tokens[t][0])) {
            // push linearized while population <= capacity held
            if (population.fetch_add(1) + 1 > static_cast<std::int64_t>(q->capacity())) {
              overflow.store(true);
            }
            Token* out = nullptr;
            while ((out = q->try_pop(h)) == nullptr) {
              std::this_thread::yield();
            }
            population.fetch_sub(1);
          }
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    stop.store(true);
    for (auto& th : threads) {
      th.join();
    }
    EXPECT_FALSE(overflow.load());
  } else {
    GTEST_SKIP() << "unbounded queue";
  }
}

TYPED_TEST(QueueConformanceTest, UnboundedPushSucceedsPastAnyCapacity) {
  // The dual of the capacity tests above: an unbounded queue constructed
  // with a tiny capacity hint (for the segmented family this sizes one
  // segment) must accept pushes far past that hint — and still drain them
  // in FIFO order, across every segment boundary it grew through.
  if constexpr (BoundedPtrQueue<TypeParam>) {
    GTEST_SKIP() << "bounded queue";
  } else {
    std::unique_ptr<TypeParam> q(make_queue<TypeParam>(4));
    auto h = q->handle();
    std::vector<Token> tokens(64);
    for (std::uint64_t i = 0; i < tokens.size(); ++i) {
      tokens[i].seq = i;
      ASSERT_TRUE(q->try_push(h, &tokens[i]))
          << "unbounded push must not fail at i=" << i;
    }
    for (std::uint64_t i = 0; i < tokens.size(); ++i) {
      Token* out = q->try_pop(h);
      ASSERT_NE(out, nullptr);
      EXPECT_EQ(out->seq, i);
    }
    EXPECT_EQ(q->try_pop(h), nullptr);
  }
}

// ---------------------------------------------------------------------------
// Boundary edges: full-queue wraparound, enqueue-on-full, dequeue-on-empty
// ---------------------------------------------------------------------------

TYPED_TEST(QueueConformanceTest, FullQueueWraparoundCycles) {
  // Fill to the brim, (for bounded queues) bounce an extra push off the full
  // queue, drain to empty — 64 times, so Head and Tail cross the slot-array
  // boundary on every cycle. This is the regime where a wraparound bug would
  // mistake generation g's slot state for generation g-1's.
  std::unique_ptr<TypeParam> q(make_queue<TypeParam>(4));
  auto h = q->handle();
  std::vector<Token> tokens(4);
  std::uint64_t seq = 0;
  for (int cycle = 0; cycle < 64; ++cycle) {
    for (auto& tok : tokens) {
      tok.seq = seq++;
      ASSERT_TRUE(q->try_push(h, &tok)) << "cycle " << cycle;
    }
    if constexpr (BoundedPtrQueue<TypeParam>) {
      Token extra;
      EXPECT_FALSE(q->try_push(h, &extra)) << "push must fail on a full queue, cycle " << cycle;
    }
    for (const auto& tok : tokens) {
      Token* out = q->try_pop(h);
      ASSERT_NE(out, nullptr) << "cycle " << cycle;
      EXPECT_EQ(out->seq, tok.seq);
    }
    EXPECT_EQ(q->try_pop(h), nullptr) << "drained queue must report empty, cycle " << cycle;
  }
}

TYPED_TEST(QueueConformanceTest, EnqueueOnFullReopensAfterOnePop) {
  if constexpr (BoundedPtrQueue<TypeParam>) {
    // Capacity 2: every reopened slot is a wrapped slot.
    std::unique_ptr<TypeParam> q(make_queue<TypeParam>(2));
    auto h = q->handle();
    std::vector<Token> tokens(5);
    for (std::uint64_t i = 0; i < tokens.size(); ++i) {
      tokens[i].seq = i;
    }
    ASSERT_TRUE(q->try_push(h, &tokens[0]));
    ASSERT_TRUE(q->try_push(h, &tokens[1]));
    EXPECT_FALSE(q->try_push(h, &tokens[2]));
    EXPECT_FALSE(q->try_push(h, &tokens[2])) << "full must be stable, not one-shot";
    EXPECT_EQ(q->try_pop(h)->seq, 0u);
    ASSERT_TRUE(q->try_push(h, &tokens[2])) << "one pop must reopen exactly one slot";
    EXPECT_FALSE(q->try_push(h, &tokens[3]));
    EXPECT_EQ(q->try_pop(h)->seq, 1u);
    ASSERT_TRUE(q->try_push(h, &tokens[3]));
    EXPECT_EQ(q->try_pop(h)->seq, 2u);
    EXPECT_EQ(q->try_pop(h)->seq, 3u);
    EXPECT_EQ(q->try_pop(h), nullptr);
  } else {
    GTEST_SKIP() << "unbounded queue";
  }
}

TYPED_TEST(QueueConformanceTest, DequeueOnEmptyIsStableAndSideEffectFree) {
  std::unique_ptr<TypeParam> q(make_queue<TypeParam>(4));
  auto h = q->handle();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(q->try_pop(h), nullptr);
  }
  // Failed pops must not have consumed capacity or corrupted the indices.
  Token tok;
  tok.seq = 7;
  ASSERT_TRUE(q->try_push(h, &tok));
  Token* out = q->try_pop(h);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->seq, 7u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(q->try_pop(h), nullptr);
  }
}

// ---------------------------------------------------------------------------
// Registry-driven conformance: every entry of harness::all_queues(), through
// the same type-erased interface the benchmarks use.
// ---------------------------------------------------------------------------

class RegistryQueueTest : public ::testing::TestWithParam<harness::QueueSpec> {};

TEST_P(RegistryQueueTest, SequentialFifoThroughTypeErasure) {
  const harness::QueueSpec& spec = GetParam();
  auto q = spec.make(8);
  auto h = q->handle();
  std::vector<harness::Payload> payloads(8);
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    payloads[i].value = i;
  }
  for (auto& p : payloads) {
    ASSERT_TRUE(h->try_push(&p)) << spec.name;
  }
  harness::Payload extra;
  extra.value = payloads.size();
  if (spec.bounded) {
    EXPECT_FALSE(h->try_push(&extra)) << spec.name << " must report full at capacity";
  } else {
    // The unbounded dual: with every slot of the construction-capacity hint
    // occupied, a further push must SUCCEED (the segmented family grows a
    // fresh segment; the link-based baselines never fill).
    EXPECT_TRUE(h->try_push(&extra))
        << spec.name << " is unbounded and must accept pushes past any capacity hint";
  }
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    harness::Payload* out = h->try_pop();
    ASSERT_NE(out, nullptr) << spec.name;
    EXPECT_EQ(out->value, i) << spec.name;
  }
  if (!spec.bounded) {
    harness::Payload* out = h->try_pop();
    ASSERT_NE(out, nullptr) << spec.name;
    EXPECT_EQ(out->value, extra.value) << spec.name;
  }
  EXPECT_EQ(h->try_pop(), nullptr) << spec.name;
}

TEST_P(RegistryQueueTest, MpmcConservationWhenConcurrent) {
  const harness::QueueSpec& spec = GetParam();
  if (!spec.concurrent) {
    GTEST_SKIP() << spec.name << " is single-threaded by contract";
  }
  constexpr std::size_t kProducers = 2;
  constexpr std::size_t kConsumers = 2;
  constexpr std::uint64_t kPerProducer = 2000;
  auto q = spec.make(16);

  std::vector<std::vector<harness::Payload>> payloads(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    payloads[p].resize(kPerProducer);
    for (std::uint64_t i = 0; i < kPerProducer; ++i) {
      payloads[p][i].value = p * kPerProducer + i;
    }
  }
  std::vector<ConsumerLog> logs(kConsumers);
  std::atomic<std::uint64_t> popped{0};
  constexpr std::uint64_t kTotal = kProducers * kPerProducer;
  std::vector<std::thread> threads;
  for (std::size_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      auto h = q->handle();
      for (auto& payload : payloads[p]) {
        while (!h->try_push(&payload)) {
          std::this_thread::yield();
        }
      }
    });
  }
  for (std::size_t c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&, c] {
      auto h = q->handle();
      for (;;) {
        if (harness::Payload* out = h->try_pop()) {
          // Recover (producer, seq) from the payload value so the stream
          // checkers apply unchanged.
          logs[c].push_back(Token{static_cast<std::uint32_t>(out->value / kPerProducer),
                                  out->value % kPerProducer, nullptr});
          popped.fetch_add(1);
        } else if (popped.load() >= kTotal) {
          return;
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  const std::vector<std::uint64_t> pushed(kProducers, kPerProducer);
  CheckResult conservation = verify::check_conservation(logs, pushed);
  EXPECT_TRUE(conservation.ok) << spec.name << ": " << conservation.reason;
  if (spec.fifo) {
    CheckResult order = verify::check_per_producer_order(logs, kProducers);
    EXPECT_TRUE(order.ok) << spec.name << ": " << order.reason;
  }
}

TEST_P(RegistryQueueTest, BatchEntryPointsMatchSingleOpSemantics) {
  // The AnyHandle batch API must transfer a maximal prefix whether the queue
  // forwards natively (ring-engine family) or through the op-by-op default.
  const harness::QueueSpec& spec = GetParam();
  auto q = spec.make(8);
  auto h = q->handle();
  std::vector<harness::Payload> payloads(12);
  std::vector<harness::Payload*> in(payloads.size());
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    payloads[i].value = i;
    in[i] = &payloads[i];
  }
  const std::size_t pushed = h->try_push_n(in.data(), in.size());
  if (spec.bounded) {
    EXPECT_EQ(pushed, 8u) << spec.name << " must stop a batch at capacity";
    EXPECT_FALSE(h->try_push(in[pushed])) << spec.name;
  } else {
    EXPECT_EQ(pushed, in.size()) << spec.name;
  }
  std::vector<harness::Payload*> out(payloads.size(), nullptr);
  const std::size_t popped = h->try_pop_n(out.data(), out.size());
  ASSERT_EQ(popped, pushed) << spec.name << " batch pop must drain exactly what was pushed";
  if (spec.fifo) {
    for (std::size_t i = 0; i < popped; ++i) {
      EXPECT_EQ(out[i]->value, i) << spec.name;
    }
  } else {
    // Sharded queues reorder across shards; a single handle still conserves.
    std::uint64_t mask = 0;
    for (std::size_t i = 0; i < popped; ++i) {
      mask |= std::uint64_t{1} << out[i]->value;
    }
    EXPECT_EQ(mask, (std::uint64_t{1} << popped) - 1) << spec.name;
  }
  EXPECT_EQ(h->try_pop(), nullptr) << spec.name;
}

std::string registry_test_name(const ::testing::TestParamInfo<harness::QueueSpec>& info) {
  std::string name = info.param.name;
  for (char& c : name) {
    if (c == '-') {
      c = '_';
    }
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllRegistryQueues, RegistryQueueTest,
                         ::testing::ValuesIn(harness::all_queues()), registry_test_name);

// The uninjected half of the torture-coverage handshake (see
// tests/torture_queues.hpp): every queue the registry knows must be covered
// by the fault-injection torture harness, whose binary cannot link the
// registry itself.
TEST(TortureCoverageRegistrySide, EveryRegistryQueueHasATortureRunner) {
  for (const harness::QueueSpec& spec : harness::all_queues()) {
    const bool covered =
        std::any_of(std::begin(evq::testing::kTortureCoveredQueues),
                    std::end(evq::testing::kTortureCoveredQueues),
                    [&](const char* name) { return spec.name == name; });
    EXPECT_TRUE(covered) << "queue '" << spec.name
                         << "' is registered but not torture-covered — add it to "
                            "tests/torture_queues.hpp and tests/torture_test.cpp";
  }
}

}  // namespace
