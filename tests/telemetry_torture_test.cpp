// Statistics-aggregation test for the sharded facade, run under the
// fault-injection substrate (this TU is part of evq_torture and compiled
// with EVQ_INJECT_ENABLED=1).
//
// The claim under test: the facade's telemetry counters are an exact
// aggregate of its shards' counters for the *successful* operations — every
// facade-accepted push lands in exactly one shard and every facade pop drains
// exactly one shard, even while injected spurious SC failures force retries
// and probe cascades inside the shards. Probe-miss counters (push_full /
// pop_empty) are deliberately NOT aggregates: a facade miss requires ALL
// shards to miss, so the shard sum may legitimately exceed the facade count.
//
// Determinism: every worker runs under a ProfileInjector seeded from
// (run seed, thread id), so a failure reproduces exactly like the rest of
// the torture matrix.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "evq/core/cas_array_queue.hpp"
#include "evq/core/llsc_array_queue.hpp"
#include "evq/core/sharded_queue.hpp"
#include "evq/inject/inject.hpp"
#include "evq/inject/profile.hpp"
#include "evq/llsc/packed_llsc.hpp"
#include "evq/telemetry/prometheus.hpp"
#include "evq/telemetry/registry.hpp"
#include "evq/verify/fifo_checkers.hpp"

#if !defined(EVQ_INJECT_ENABLED) || !EVQ_INJECT_ENABLED
#error "telemetry_torture_test.cpp must be compiled with EVQ_INJECT_ENABLED=1"
#endif

namespace evq {
namespace {

using verify::Token;

// Moderate sc-storm: enough forced SC failures and yield bursts to make the
// shard internals retry and the facade probe across shards, without a stall
// victim (aggregation is about counts, not liveness).
const inject::Profile kAggProfile{
    "telemetry-agg",
    "spurious SC failures + yield bursts while checking counter aggregation",
    /*sc_fail=*/25, 100, "",
    /*delay=*/5, 100, 2, ""};

struct AggTotals {
  std::uint64_t pushed = 0;
  std::uint64_t popped = 0;
};

/// 2 producers / 2 consumers over a 4-shard facade; returns the exact op
/// totals the workload performed so the caller can pin the counters to them.
template <typename Q>
AggTotals run_sharded_workload(Q& queue, std::uint64_t seed) {
  constexpr std::size_t kProducers = 2;
  constexpr std::size_t kConsumers = 2;
  constexpr std::uint64_t kTokensPerProducer = 300;

  std::vector<std::vector<Token>> tokens(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    tokens[p].resize(kTokensPerProducer);
    for (std::uint64_t s = 0; s < kTokensPerProducer; ++s) {
      tokens[p][s].producer = static_cast<std::uint32_t>(p);
      tokens[p][s].seq = s;
    }
  }

  inject::StallGate gate;
  std::vector<std::unique_ptr<inject::ProfileInjector>> injectors;
  for (std::size_t t = 0; t < kProducers + kConsumers; ++t) {
    const inject::Role role = t < kProducers ? inject::Role::kProducer : inject::Role::kConsumer;
    injectors.push_back(std::make_unique<inject::ProfileInjector>(
        kAggProfile, seed, static_cast<std::uint32_t>(t), role, &gate));
  }

  std::atomic<std::uint64_t> remaining{kProducers * kTokensPerProducer};
  std::vector<std::thread> threads;
  for (std::size_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      inject::ScopedInjector install(*injectors[p]);
      auto h = queue.handle();
      for (std::uint64_t s = 0; s < kTokensPerProducer; ++s) {
        while (!queue.try_push(h, &tokens[p][s])) {
          std::this_thread::yield();
        }
      }
    });
  }
  for (std::size_t c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&, c] {
      inject::ScopedInjector install(*injectors[kProducers + c]);
      auto h = queue.handle();
      while (remaining.load(std::memory_order_acquire) != 0) {
        if (queue.try_pop(h) != nullptr) {
          remaining.fetch_sub(1, std::memory_order_acq_rel);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  gate.release();

  AggTotals totals;
  totals.pushed = kProducers * kTokensPerProducer;
  totals.popped = kProducers * kTokensPerProducer;
  return totals;
}

/// Snapshot the global registry and check facade-vs-shard-sum exactness for
/// the given facade name (shards register as "<name>/<i>").
void expect_facade_aggregates(const std::string& name, std::size_t shards,
                              const AggTotals& totals) {
#if EVQ_TELEMETRY
  const telemetry::RegistrySnapshot snap = telemetry::snapshot_registry();
  const telemetry::QueueCounters* facade = snap.find(name);
  ASSERT_NE(facade, nullptr) << name << " must be registered";

  std::uint64_t shard_push_ok = 0;
  std::uint64_t shard_pop_ok = 0;
  std::uint64_t shard_sc_fail = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    const telemetry::QueueCounters* shard = snap.find(name + "/" + std::to_string(s));
    ASSERT_NE(shard, nullptr) << "shard " << s << " of " << name << " must register";
    shard_push_ok += shard->counters[telemetry::Counter::kPushOk];
    shard_pop_ok += shard->counters[telemetry::Counter::kPopOk];
    shard_sc_fail += shard->counters[telemetry::Counter::kSlotScFail];
  }

  // Success counters are exact at both levels and agree with the workload.
  EXPECT_EQ(facade->counters[telemetry::Counter::kPushOk], totals.pushed);
  EXPECT_EQ(shard_push_ok, totals.pushed)
      << "every facade-accepted push must land in exactly one shard";
  EXPECT_EQ(facade->counters[telemetry::Counter::kPopOk], totals.popped);
  EXPECT_EQ(shard_pop_ok, totals.popped);
  // The injector really exercised the retry paths we claim to count through.
  EXPECT_GT(shard_sc_fail, 0u) << "sc-storm must have forced shard-level SC failures";
#else
  (void)name;
  (void)shards;
  (void)totals;
  GTEST_SKIP() << "counters compiled out with EVQ_TELEMETRY=0";
#endif
}

TEST(TelemetryTorture, ShardedLlscFacadeAggregatesUnderScStorm) {
  ShardedQueue<LlscArrayQueue<Token, llsc::PackedLlsc>> q(32, 4, "torture-sharded-llsc-agg");
  ASSERT_EQ(q.shard_count(), 4u);
  const AggTotals totals = run_sharded_workload(q, 0x9E3779B97F4A7C15ull);
  expect_facade_aggregates("torture-sharded-llsc-agg", 4, totals);
}

TEST(TelemetryTorture, ShardedCasFacadeAggregatesUnderScStorm) {
  ShardedQueue<CasArrayQueue<Token>> q(32, 4, "torture-sharded-cas-agg");
  ASSERT_EQ(q.shard_count(), 4u);
  const AggTotals totals = run_sharded_workload(q, 0xC2B2AE3D27D4EB4Full);
  expect_facade_aggregates("torture-sharded-cas-agg", 4, totals);
}

}  // namespace
}  // namespace evq
