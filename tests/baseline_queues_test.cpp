// Per-implementation tests for the baseline queues (Michael–Scott variants,
// Shann, mutex, unsynchronized ring). Cross-implementation behaviour is in
// queue_conformance_test.cpp; these cover baseline-specific mechanics.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "evq/baselines/ms_hp_queue.hpp"
#include "evq/baselines/ms_pool_queue.hpp"
#include "evq/baselines/ms_sim_queue.hpp"
#include "evq/baselines/mutex_queue.hpp"
#include "evq/baselines/shann_queue.hpp"
#include "evq/baselines/unsync_ring.hpp"

namespace {

using namespace evq;
using namespace evq::baselines;

struct Item {
  std::uint64_t id = 0;
};

// ---------------------------------------------------------------------------
// MsHpQueue
// ---------------------------------------------------------------------------

TEST(MsHpQueue, BasicFifo) {
  MsHpQueue<Item> q;
  auto h = q.handle();
  Item items[5];
  for (std::uint64_t i = 0; i < 5; ++i) {
    items[i].id = i;
    EXPECT_TRUE(q.try_push(h, &items[i]));
  }
  for (std::uint64_t i = 0; i < 5; ++i) {
    Item* out = q.try_pop(h);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->id, i);
  }
  EXPECT_EQ(q.try_pop(h), nullptr);
}

TEST(MsHpQueue, UnboundedPushNeverFails) {
  MsHpQueue<Item> q;
  auto h = q.handle();
  std::vector<Item> items(1000);
  for (auto& item : items) {
    EXPECT_TRUE(q.try_push(h, &item));
  }
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_NE(q.try_pop(h), nullptr);
  }
}

TEST(MsHpQueue, ReclamationActuallyFreesNodes) {
  // Enough traffic to cross the scan threshold several times.
  MsHpQueue<Item> q(hazard::ScanMode::kUnsorted, 4);
  auto h = q.handle();
  Item item;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(q.try_push(h, &item));
    ASSERT_EQ(q.try_pop(h), &item);
  }
  EXPECT_GT(q.domain().reclaimed_count(), 0u) << "scans must have freed retired nodes";
}

TEST(MsHpQueue, SortedModeBehavesIdentically) {
  MsHpQueue<Item> q(hazard::ScanMode::kSorted, 4);
  auto h = q.handle();
  Item items[20];
  for (std::uint64_t i = 0; i < 20; ++i) {
    items[i].id = i;
    ASSERT_TRUE(q.try_push(h, &items[i]));
  }
  for (std::uint64_t i = 0; i < 20; ++i) {
    Item* out = q.try_pop(h);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->id, i);
  }
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(q.try_push(h, &items[0]));
    ASSERT_NE(q.try_pop(h), nullptr);
  }
  EXPECT_GT(q.domain().reclaimed_count(), 0u);
}

TEST(MsHpQueue, HandlesTrackDomainRecords) {
  MsHpQueue<Item> q;
  {
    auto h1 = q.handle();
    auto h2 = q.handle();
    EXPECT_EQ(q.domain().record_count(), 2u);
  }
  auto h3 = q.handle();  // recycles a released record
  EXPECT_EQ(q.domain().record_count(), 2u);
}

// ---------------------------------------------------------------------------
// MsPoolQueue
// ---------------------------------------------------------------------------

TEST(MsPoolQueue, BasicFifo) {
  MsPoolQueue<Item> q;
  auto h = q.handle();
  Item items[5];
  for (std::uint64_t i = 0; i < 5; ++i) {
    items[i].id = i;
    EXPECT_TRUE(q.try_push(h, &items[i]));
  }
  for (std::uint64_t i = 0; i < 5; ++i) {
    Item* out = q.try_pop(h);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->id, i);
  }
}

TEST(MsPoolQueue, NodesAreRecycledNotLeaked) {
  MsPoolQueue<Item> q;
  auto h = q.handle();
  Item item;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(q.try_push(h, &item));
    ASSERT_EQ(q.try_pop(h), &item);
  }
  // Steady-state single-thread traffic needs only a couple of nodes: the
  // footprint must be far below the operation count.
  EXPECT_LE(q.pool().allocated(), 8u);
}

TEST(MsPoolQueue, EmptyAfterDrain) {
  MsPoolQueue<Item> q;
  auto h = q.handle();
  Item item;
  ASSERT_TRUE(q.try_push(h, &item));
  ASSERT_EQ(q.try_pop(h), &item);
  EXPECT_EQ(q.try_pop(h), nullptr);
  EXPECT_EQ(q.try_pop(h), nullptr);
}

// ---------------------------------------------------------------------------
// MsSimQueue (the MS-Doherty comparator)
// ---------------------------------------------------------------------------

TEST(MsSimQueue, BasicFifo) {
  MsSimQueue<Item> q;
  auto h = q.handle();
  Item items[5];
  for (std::uint64_t i = 0; i < 5; ++i) {
    items[i].id = i;
    EXPECT_TRUE(q.try_push(h, &items[i]));
  }
  for (std::uint64_t i = 0; i < 5; ++i) {
    Item* out = q.try_pop(h);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->id, i);
  }
  EXPECT_EQ(q.try_pop(h), nullptr);
}

TEST(MsSimQueue, EmptyQueuePopsNullRepeatedly) {
  MsSimQueue<Item> q;
  auto h = q.handle();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(q.try_pop(h), nullptr);
  }
}

TEST(MsSimQueue, RegistryHoldsTwoVarsPerHandle) {
  MsSimQueue<Item> q;
  auto h1 = q.handle();
  EXPECT_EQ(q.registry().claimed_count(), 2u);
  {
    auto h2 = q.handle();
    EXPECT_EQ(q.registry().claimed_count(), 4u);
  }
  EXPECT_EQ(q.registry().claimed_count(), 2u);
}

TEST(MsSimQueue, PoolFootprintStaysBounded) {
  MsSimQueue<Item> q;
  auto h = q.handle();
  Item item;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(q.try_push(h, &item));
    ASSERT_EQ(q.try_pop(h), &item);
  }
  EXPECT_LE(q.pool().allocated(), 16u);
}

TEST(MsSimQueue, InterleavedHandles) {
  MsSimQueue<Item> q;
  auto h1 = q.handle();
  auto h2 = q.handle();
  Item a{1};
  Item b{2};
  EXPECT_TRUE(q.try_push(h1, &a));
  EXPECT_TRUE(q.try_push(h2, &b));
  EXPECT_EQ(q.try_pop(h2), &a);
  EXPECT_EQ(q.try_pop(h1), &b);
}

// ---------------------------------------------------------------------------
// ShannQueue
// ---------------------------------------------------------------------------

TEST(ShannQueue, BasicFifoAndBounds) {
  ShannQueue<Item> q(4);
  auto h = q.handle();
  Item items[5];
  for (int i = 0; i < 4; ++i) {
    items[i].id = static_cast<std::uint64_t>(i);
    ASSERT_TRUE(q.try_push(h, &items[i]));
  }
  EXPECT_FALSE(q.try_push(h, &items[4]));
  for (std::uint64_t i = 0; i < 4; ++i) {
    Item* out = q.try_pop(h);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->id, i);
  }
  EXPECT_EQ(q.try_pop(h), nullptr);
}

TEST(ShannQueue, WrapAroundBumpsSlotVersions) {
  ShannQueue<Item> q(2);
  auto h = q.handle();
  Item a{1};
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(q.try_push(h, &a));
    ASSERT_EQ(q.try_pop(h), &a);
  }
  EXPECT_EQ(q.size_estimate(), 0u);
}

// ---------------------------------------------------------------------------
// MutexQueue / UnsyncRing
// ---------------------------------------------------------------------------

TEST(MutexQueue, BasicFifoAndBounds) {
  MutexQueue<Item> q(4);
  auto h = q.handle();
  Item items[5];
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.try_push(h, &items[i]));
  }
  EXPECT_FALSE(q.try_push(h, &items[4]));
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(q.try_pop(h), &items[i]);
  }
  EXPECT_EQ(q.try_pop(h), nullptr);
}

TEST(UnsyncRing, BasicFifoAndBounds) {
  UnsyncRing<Item> q(4);
  auto h = q.handle();
  Item items[5];
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.try_push(h, &items[i]));
  }
  EXPECT_FALSE(q.try_push(h, &items[4]));
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(q.try_pop(h), &items[i]);
  }
  EXPECT_EQ(q.try_pop(h), nullptr);
}

TEST(UnsyncRing, LongWrap) {
  UnsyncRing<Item> q(8);
  auto h = q.handle();
  Item items[3];
  for (int round = 0; round < 10000; ++round) {
    for (auto& item : items) {
      ASSERT_TRUE(q.try_push(h, &item));
    }
    for (auto& item : items) {
      ASSERT_EQ(q.try_pop(h), &item);
    }
  }
}

}  // namespace
