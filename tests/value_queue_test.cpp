// Tests for the value-semantics adapter over the pointer queues.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "evq/baselines/ms_hp_queue.hpp"
#include "evq/core/cas_array_queue.hpp"
#include "evq/core/llsc_array_queue.hpp"
#include "evq/core/value_queue.hpp"

namespace {

using namespace evq;

TEST(ValueQueue, PushPopRoundTripsValues) {
  ValueQueue<std::uint64_t, CasArrayQueue> q(8);
  auto h = q.handle();
  EXPECT_TRUE(q.try_push(h, 42));
  auto out = q.try_pop(h);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, 42u);
  EXPECT_FALSE(q.try_pop(h).has_value());
}

TEST(ValueQueue, FifoOrder) {
  ValueQueue<int, CasArrayQueue> q(16);
  auto h = q.handle();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(q.try_push(h, i));
  }
  for (int i = 0; i < 10; ++i) {
    auto out = q.try_pop(h);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, i);
  }
}

TEST(ValueQueue, FullReportsFalseAndValueNotLost) {
  ValueQueue<int, CasArrayQueue> q(2);
  auto h = q.handle();
  ASSERT_TRUE(q.try_push(h, 1));
  ASSERT_TRUE(q.try_push(h, 2));
  EXPECT_FALSE(q.try_push(h, 3));
  EXPECT_EQ(*q.try_pop(h), 1);
  EXPECT_TRUE(q.try_push(h, 3));
  EXPECT_EQ(*q.try_pop(h), 2);
  EXPECT_EQ(*q.try_pop(h), 3);
}

TEST(ValueQueue, FailedPushLeavesCallersValueRecoverable) {
  // Regression: a rejected push used to move the argument into a node and
  // then destroy it with the node — a full queue silently ate the value.
  // Both overloads must leave the caller's data usable after a failure.
  ValueQueue<std::string, CasArrayQueue> q(2);
  auto h = q.handle();
  ASSERT_TRUE(q.try_push(h, std::string("a")));
  ASSERT_TRUE(q.try_push(h, std::string("b")));

  const std::string original(1000, 'x');  // long enough to defeat SSO
  std::string value = original;
  EXPECT_FALSE(q.try_push(h, std::move(value)));
  EXPECT_EQ(value, original) << "a failed rvalue push must move the value back";

  EXPECT_FALSE(q.try_push(h, value));  // lvalue overload copies
  EXPECT_EQ(value, original) << "a failed lvalue push must not touch the argument";

  EXPECT_EQ(*q.try_pop(h), "a");
  EXPECT_TRUE(q.try_push(h, std::move(value)));
  EXPECT_EQ(*q.try_pop(h), "b");
  EXPECT_EQ(*q.try_pop(h), original);
}

TEST(ValueQueue, WorksWithMoveOnlyishTypes) {
  ValueQueue<std::string, CasArrayQueue> q(8);
  auto h = q.handle();
  ASSERT_TRUE(q.try_push(h, std::string("hello")));
  ASSERT_TRUE(q.try_push(h, std::string("world")));
  EXPECT_EQ(*q.try_pop(h), "hello");
  EXPECT_EQ(*q.try_pop(h), "world");
}

TEST(ValueQueue, RecyclesNodesThroughPool) {
  ValueQueue<int, CasArrayQueue> q(4);
  auto h = q.handle();
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(q.try_push(h, i));
    ASSERT_EQ(*q.try_pop(h), i);
  }
  // Steady-state single-threaded traffic must not keep allocating.
  // (Pool stats are on the adapter's internal pool; reachable via no public
  // accessor by design — the observable proxy is that this loop does not
  // OOM and ASan reports no leak. Nothing to assert numerically here.)
  SUCCEED();
}

TEST(ValueQueue, WorksOverLlscArrayQueue) {
  ValueQueue<int, LlscArrayQueue> q(8);
  auto h = q.handle();
  ASSERT_TRUE(q.try_push(h, 5));
  EXPECT_EQ(*q.try_pop(h), 5);
}

TEST(ValueQueue, WorksOverUnboundedMsQueue) {
  ValueQueue<int, baselines::MsHpQueue> q;
  auto h = q.handle();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(q.try_push(h, i));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(*q.try_pop(h), i);
  }
}

TEST(ValueQueue, DestructionWithLeftoverValuesDoesNotLeak) {
  auto* q = new ValueQueue<std::string, CasArrayQueue>(8);
  {
    // Handles must not outlive their queue (they hold a registration in the
    // queue's registry), hence the scope.
    auto h = q->handle();
    ASSERT_TRUE(q->try_push(h, std::string("left")));
    ASSERT_TRUE(q->try_push(h, std::string("over")));
  }
  delete q;  // ASan build verifies the boxed strings are reclaimed
  SUCCEED();
}

TEST(ValueQueue, ConcurrentProducersConsumers) {
  ValueQueue<std::uint64_t, CasArrayQueue> q(64);
  constexpr int kProducers = 2;
  constexpr int kConsumers = 2;
  constexpr std::uint64_t kPerProducer = 5000;
  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::uint64_t> count{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      auto ph = q.handle();
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        while (!q.try_push(ph, p * kPerProducer + i)) {
          std::this_thread::yield();
        }
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      auto ch = q.handle();
      while (count.load() < kProducers * kPerProducer) {
        auto v = q.try_pop(ch);
        if (v.has_value()) {
          sum.fetch_add(*v);
          count.fetch_add(1);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  const std::uint64_t n = kProducers * kPerProducer;
  EXPECT_EQ(count.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);  // values are 0..n-1 exactly once
}

}  // namespace
