// Focused tests for Algorithm 1's interaction with imperfect LL/SC hardware
// — the Sec. 5 limitations that motivate Algorithm 2. The WeakLlsc policy
// models limitation #3 (spurious SC failure); these tests quantify and
// bound its effects beyond what the conformance matrix samples.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "evq/common/op_stats.hpp"
#include "evq/core/llsc_array_queue.hpp"
#include "evq/llsc/versioned_llsc.hpp"
#include "evq/llsc/weak_llsc.hpp"

namespace {

using namespace evq;

struct Item {
  std::uint64_t id = 0;
};

template <typename T>
using Weak50 = llsc::WeakLlsc<llsc::VersionedLlsc<T>, 50>;

TEST(WeakLlscQueue, HalfFailureRateStillCompletesEveryOperation) {
  // 50% spurious SC failure: every queue operation still terminates (each
  // retry re-reads fresh state and the failure coin is independent).
  LlscArrayQueue<Item, Weak50> q(4);
  auto h = q.handle();
  Item items[3];
  for (int round = 0; round < 2000; ++round) {
    for (auto& item : items) {
      ASSERT_TRUE(q.try_push(h, &item));
    }
    for (auto& item : items) {
      ASSERT_EQ(q.try_pop(h), &item);
    }
  }
}

TEST(WeakLlscQueue, SpuriousFailureCostsAttemptsNotCorrectness) {
  // Measured CAS attempts must exceed successes roughly in line with the
  // injected failure rate; successes stay pinned at 2 per operation.
  LlscArrayQueue<Item, Weak50> q(8);
  auto h = q.handle();
  Item item;
  stats::OpCounters c;
  constexpr int kOps = 2000;
  {
    stats::ScopedOpRecording rec(c);
    for (int i = 0; i < kOps; ++i) {
      ASSERT_TRUE(q.try_push(h, &item));
      ASSERT_EQ(q.try_pop(h), &item);
    }
  }
  // The narrow CASes are the index advances (1 per op, never injected);
  // the slot SCs run on the wide (versioned) cell. A spurious failure
  // short-circuits BEFORE the inner wide CAS, so it shows up as an extra
  // retry iteration — i.e. an extra wide LL load — not as a failed CAS.
  EXPECT_EQ(c.cas_success, 2u * kOps);       // tail/head advances
  EXPECT_EQ(c.wide_cas_success, 2u * kOps);  // slot installs/removals
  EXPECT_EQ(c.wide_cas_attempts, c.wide_cas_success)
      << "uncontended: every wide CAS that actually executes succeeds";
  EXPECT_GT(c.wide_loads, 2u * kOps + kOps / 2)
      << "50% spurious SC failure must force a significant number of LL retries";
}

TEST(WeakLlscQueue, ConcurrentWeakQueueConserves) {
  LlscArrayQueue<Item, Weak50> q(4);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 1500;
  std::vector<std::vector<Item>> items(kThreads);
  std::atomic<std::uint64_t> popped{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    items[t].resize(kPerThread);
    threads.emplace_back([&, t] {
      auto h = q.handle();
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        while (!q.try_push(h, &items[t][i])) {
          std::this_thread::yield();
        }
        while (q.try_pop(h) == nullptr) {
          std::this_thread::yield();
        }
        popped.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(popped.load(), kThreads * kPerThread);
  EXPECT_EQ(q.head_index(), q.tail_index());
}

}  // namespace
