// SCQ policy mechanics (core/scq_queue.hpp), pinned deterministically:
//
//  * ScqLayout packing round-trips and the wrap-aware cycle comparison —
//    the single-word {cycle, isSafe, index} encoding everything rests on;
//  * the threshold machinery: empty-side dequeues charge it exactly once
//    each and drag the tail along (the cautious catch-up), the fast path
//    engages when it is spent, and one successful enqueue re-arms it;
//  * the cycle-wrap ABA edge, scripted with the injection substrate exactly
//    like tag_wrap_test.cpp: a consumer parked right after its ticket FAA
//    while the ring revolves underneath must still consume precisely its
//    own-cycle entry — which meanwhile was marked UNSAFE by the overtaking
//    dequeuers — and never a same-position value from another cycle.
//
// Lives in the torture binary: the scripted schedules need
// EVQ_INJECT_ENABLED=1, and the queue templates must not also exist in an
// uninjected compilation inside the same binary.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string_view>
#include <thread>
#include <vector>

#include "evq/core/scq_queue.hpp"
#include "evq/inject/inject.hpp"
#include "evq/inject/profile.hpp"
#include "evq/telemetry/metrics.hpp"
#include "evq/verify/fifo_checkers.hpp"

#if !defined(EVQ_INJECT_ENABLED) || !EVQ_INJECT_ENABLED
#error "scq_policy_test.cpp must be compiled with EVQ_INJECT_ENABLED=1"
#endif

namespace {

using namespace evq;
using verify::Token;

// ---------------------------------------------------------------------------
// ScqLayout: packing round-trips
// ---------------------------------------------------------------------------

TEST(ScqLayout, PackUnpackRoundTripsAcrossOrders) {
  for (std::uint32_t order = 2; order <= 20; order += 3) {
    const ScqLayout layout(order);
    const std::uint64_t top_index = (std::uint64_t{1} << order) - 1;  // == bottom()
    const std::uint64_t cycles[] = {0, 1, 2, 1000, layout.cycle_mask() - 1,
                                    layout.cycle_mask()};
    const std::uint64_t indices[] = {0, 1, top_index / 2, top_index};
    for (std::uint64_t cycle : cycles) {
      for (std::uint64_t index : indices) {
        for (bool safe : {false, true}) {
          const std::uint64_t e = layout.make(cycle, safe, index);
          EXPECT_EQ(layout.cycle(e), cycle) << "order " << order;
          EXPECT_EQ(layout.is_safe(e), safe) << "order " << order;
          EXPECT_EQ(layout.index(e), index) << "order " << order;
        }
      }
    }
  }
}

TEST(ScqLayout, AllOnesWordIsTheVirginEmptyEntry) {
  // Ring entries are initialized to ~0: index ⊥, safe, cycle ≡ −1 — i.e.
  // one cycle BEFORE cycle 0, so the very first tickets may use the entry.
  const ScqLayout layout(4);
  const std::uint64_t virgin = ~std::uint64_t{0};
  EXPECT_EQ(layout.index(virgin), layout.bottom());
  EXPECT_TRUE(layout.is_safe(virgin));
  EXPECT_EQ(layout.cycle(virgin), layout.cycle_mask());
  EXPECT_TRUE(layout.cycle_lt(layout.cycle(virgin), 0)) << "cycle −1 precedes cycle 0";
}

TEST(ScqLayout, ConsumeMaskPreservesCycleAndSafeBit) {
  // fetch_or(bottom()) is how a dequeuer consumes: only the index bits may
  // change, and they must saturate to ⊥.
  const ScqLayout layout(5);
  const std::uint64_t e = layout.make(42, true, 7);
  const std::uint64_t consumed = e | layout.bottom();
  EXPECT_EQ(layout.cycle(consumed), 42u);
  EXPECT_TRUE(layout.is_safe(consumed));
  EXPECT_EQ(layout.index(consumed), layout.bottom());
  const std::uint64_t unsafe = layout.make(42, false, 7);
  EXPECT_FALSE(layout.is_safe(unsafe | layout.bottom())) << "consume must not resurrect safety";
}

TEST(ScqLayout, TicketCycleIsTheTicketsRingRevolution) {
  const ScqLayout layout(3);  // ring of 8 entries
  EXPECT_EQ(layout.ticket_cycle(0), 0u);
  EXPECT_EQ(layout.ticket_cycle(7), 0u);
  EXPECT_EQ(layout.ticket_cycle(8), 1u);
  EXPECT_EQ(layout.ticket_cycle(17), 2u);
}

// ---------------------------------------------------------------------------
// ScqLayout: wrap-aware cycle comparison (the ABA defence)
// ---------------------------------------------------------------------------

TEST(ScqLayout, CycleCompareIsWrapAware) {
  const ScqLayout layout(10);
  const std::uint64_t top = layout.cycle_mask();

  EXPECT_TRUE(layout.cycle_lt(0, 1));
  EXPECT_FALSE(layout.cycle_lt(1, 0));
  EXPECT_FALSE(layout.cycle_lt(5, 5));

  // Across the numeric wrap of the truncated cycle field: the stored value
  // `top` means "one step before 0", not "astronomically later".
  EXPECT_TRUE(layout.cycle_lt(top, 0));
  EXPECT_FALSE(layout.cycle_lt(0, top));
  EXPECT_TRUE(layout.cycle_lt(top - 1, top));
  EXPECT_TRUE(layout.cycle_lt(top - 1, 1)) << "two steps forward across the wrap";

  // Serial-number arithmetic: each cycle precedes its successor everywhere
  // on the ring, including both wrap neighbours.
  for (std::uint64_t c : {std::uint64_t{0}, top / 2, top - 1, top}) {
    const std::uint64_t next = (c + 1) & layout.cycle_mask();
    EXPECT_TRUE(layout.cycle_lt(c, next)) << "c=" << c;
    EXPECT_FALSE(layout.cycle_lt(next, c)) << "c=" << c;
  }
}

// ---------------------------------------------------------------------------
// Threshold exhaustion and the cautious catch-up
// ---------------------------------------------------------------------------

TEST(ScqThreshold, EmptyDequeuesChargeOnceEachCatchTheTailUpThenFastPath) {
  ScqQueue<Token> q(4, "scq-threshold-empty");  // n=4: threshold re-arms at 11
  auto h = q.handle();
  Token tok{0, 0};
  ASSERT_TRUE(q.try_push(h, &tok));
  EXPECT_EQ(q.try_pop(h), &tok);

  ScqRing& aq = q.alloc_ring();
  const std::int64_t armed = aq.threshold_init();
  ASSERT_EQ(aq.threshold(), armed) << "a successful enqueue must have armed the threshold";

  // Each failed pop burns one ticket, drags Tail along with Head (the
  // catch-up), and charges the threshold exactly once.
  std::int64_t expected = armed;
  while (expected >= 0) {
    const std::uint64_t head_before = aq.head();
    EXPECT_EQ(q.try_pop(h), nullptr);
    --expected;
    EXPECT_EQ(aq.threshold(), expected);
    EXPECT_EQ(aq.head(), head_before + 1) << "one ticket per failed probe";
    EXPECT_EQ(aq.tail(), aq.head()) << "cautious dequeue must catch the tail up";
  }

  // Spent: the fast path answers without claiming tickets.
  const std::uint64_t head_spent = aq.head();
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(q.try_pop(h), nullptr);
  }
  EXPECT_EQ(aq.head(), head_spent) << "fast-path ⊥ must not consume tickets";
  EXPECT_LT(aq.threshold(), 0);

  // One successful push re-arms everything.
  ASSERT_TRUE(q.try_push(h, &tok));
  EXPECT_EQ(aq.threshold(), armed);
  EXPECT_EQ(q.try_pop(h), &tok);
}

TEST(ScqThreshold, FullPushesExhaustTheFreeRingThresholdAndOnePopReArms) {
  ScqQueue<Token> q(4, "scq-threshold-full");
  auto h = q.handle();
  std::vector<Token> tokens(5);
  for (std::uint64_t i = 0; i < 4; ++i) {
    tokens[i].seq = i;
    ASSERT_TRUE(q.try_push(h, &tokens[i]));
  }

  // The free ring is drained: failed pushes walk its threshold down to the
  // fast path, exactly like failed pops on an empty allocated ring.
  ScqRing& fq = q.free_ring();
  std::int64_t expected = fq.threshold();
  while (expected >= 0) {
    EXPECT_FALSE(q.try_push(h, &tokens[4]));
    --expected;
    EXPECT_EQ(fq.threshold(), expected);
  }
  const std::uint64_t head_spent = fq.head();
  EXPECT_FALSE(q.try_push(h, &tokens[4]));
  EXPECT_EQ(fq.head(), head_spent) << "fast-path FULL must not consume tickets";

  // One pop recycles one index and re-arms the free ring; exactly one slot
  // reopens.
  EXPECT_EQ(q.try_pop(h), &tokens[0]);
  EXPECT_EQ(fq.threshold(), fq.threshold_init());
  tokens[4].seq = 4;
  EXPECT_TRUE(q.try_push(h, &tokens[4]));
  EXPECT_FALSE(q.try_push(h, &tokens[0]));
  for (std::uint64_t i = 1; i <= 4; ++i) {
    Token* out = q.try_pop(h);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->seq, i) << "FIFO must survive the threshold round-trip";
  }
  EXPECT_EQ(q.try_pop(h), nullptr);
}

// ---------------------------------------------------------------------------
// Deterministic unsafe transition + cycle-ABA edge (scripted stall)
// ---------------------------------------------------------------------------

// A consumer parked between its ticket FAA and its entry load, exactly the
// window the cycle tags defend (tag_wrap_test.cpp's shape, one queue
// generation later). While it sleeps, the ring revolves: its entry's item is
// stranded (only head-ticket-0 may consume it), the overtaking dequeuer that
// re-reaches the position MUST mark the held entry unsafe instead of
// touching its payload, and enqueuers must route around the position. On
// release, the victim must consume precisely its own-cycle entry — the
// stranded first token — not anything the later cycles put near it.
TEST(ScqTeeth, ParkedDequeuerSurvivesRingRevolutionViaUnsafeMark) {
  ScqQueue<Token> q(4, "scq-unsafe-pin");  // n=4 → aq ring of 8 entries
  auto main_h = q.handle();
  const ScqLayout& layout = q.alloc_ring().layout();

  Token first{0, 1};
  ASSERT_TRUE(q.try_push(main_h, &first));  // aq ticket 0, entry position 0

  inject::StallGate gate(1u << 26);
  const inject::Profile script{
      "scripted-scq-stall",
      "park one consumer right after its allocated-ring ticket FAA",
      /*sc_fail=*/0, 100, "",
      /*delay=*/0, 100, 0, "",
      /*stall=*/"core.scq.aq.deq.reserved", inject::Role::kAny};

  std::atomic<Token*> victim_got{nullptr};
  std::thread victim([&] {
    inject::ProfileInjector injector(script, /*seed=*/1, /*thread_id=*/0, inject::Role::kConsumer,
                                     &gate);
    inject::ScopedInjector scoped(injector);
    auto h = q.handle();
    victim_got.store(q.try_pop(h), std::memory_order_release);
  });

  while (!gate.parked()) {
    std::this_thread::yield();
  }

  // Ticket 0 is captive in the victim. Revolve the allocated ring once:
  // pair i installs at aq ticket i and pops at head ticket i (1..7), then
  // pair 8 wraps to position 0 — its push must refuse the held entry
  // (index ≠ ⊥) and its pop must mark it unsafe, both without disturbing
  // the stranded index.
  std::vector<Token> laps(9);
  for (std::uint64_t i = 1; i <= 8; ++i) {
    laps[i].seq = i;
    ASSERT_TRUE(q.try_push(main_h, &laps[i]));
    Token* out = q.try_pop(main_h);
    ASSERT_EQ(out, &laps[i]) << "main traffic must never receive the stranded token";
  }

  const std::uint64_t held = q.alloc_ring().entry(0);
  EXPECT_EQ(layout.cycle(held), 0u) << "the held entry must keep its cycle";
  EXPECT_FALSE(layout.is_safe(held)) << "the overtaking dequeuer must have marked it unsafe";
  EXPECT_NE(layout.index(held), layout.bottom()) << "the stranded index must survive the mark";
  EXPECT_GT(q.metrics().value(telemetry::Counter::kSlotSkip), 0u);
  EXPECT_GT(q.metrics().value(telemetry::Counter::kFaaReserve), 0u);

  gate.release();
  victim.join();
  EXPECT_EQ(victim_got.load(std::memory_order_acquire), &first)
      << "the victim's ancient ticket must consume exactly its own-cycle entry";

  // The unsafe position must be recoverable: enqueuers rescue it via the
  // Head check once no dequeuer can still want the old cycle. A full
  // fill/drain proves no capacity leaked.
  std::vector<Token> refill(4);
  for (std::uint64_t i = 0; i < 4; ++i) {
    refill[i].seq = 100 + i;
    ASSERT_TRUE(q.try_push(main_h, &refill[i])) << "slot " << i;
  }
  EXPECT_FALSE(q.try_push(main_h, &first)) << "capacity must be exactly n after recovery";
  for (std::uint64_t i = 0; i < 4; ++i) {
    Token* out = q.try_pop(main_h);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->seq, 100 + i);
  }
  EXPECT_EQ(q.try_pop(main_h), nullptr);
}

// Forces the spurious-failure path of the skip CAS: the dequeuer must
// re-examine the entry (an enqueuer may have installed its cycle in the
// window) rather than give up or double-charge the threshold.
class SkipCasFailsOnce : public inject::Injector {
 public:
  void at_point(const char*) noexcept override {}
  bool fail_sc(const char* point) noexcept override {
    if (!fired_ && std::string_view(point) == "core.scq.aq.deq.skip.sc") {
      fired_ = true;
      return true;
    }
    return false;
  }
  [[nodiscard]] bool fired() const noexcept { return fired_; }

 private:
  bool fired_ = false;
};

TEST(ScqTeeth, SpuriousSkipCasFailureOnlyRetries) {
  ScqQueue<Token> q(4, "scq-skip-scfail");
  auto h = q.handle();
  Token tok{7, 1};
  ASSERT_TRUE(q.try_push(h, &tok));
  ASSERT_EQ(q.try_pop(h), &tok);

  SkipCasFailsOnce injector;
  inject::ScopedInjector scoped(injector);
  // Empty queue, armed threshold: this pop takes the skip path (cycle bump)
  // and its first CAS attempt is forced to fail spuriously.
  EXPECT_EQ(q.try_pop(h), nullptr);
  EXPECT_TRUE(injector.fired());

  // Exactness afterwards: the retry must not have consumed anything or
  // wedged the position.
  Token tok2{8, 1};
  ASSERT_TRUE(q.try_push(h, &tok2));
  EXPECT_EQ(q.try_pop(h), &tok2);
  EXPECT_EQ(q.try_pop(h), nullptr);
}

}  // namespace
