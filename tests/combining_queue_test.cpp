// Tests for the flat-combining facade (core/combining_queue.hpp,
// DESIGN.md §14): FIFO behaviour through the adaptive direct/announce
// routing, batch maximal-prefix semantics, shared announce-slot fallback,
// the deterministic solo-streak decay back to direct mode, the combining
// telemetry counters, and a concurrent conservation stress that drives the
// announce/combine/withdraw paths for the sanitizer builds.
//
// The adaptive engagement heuristic is performance-only (both routes are
// linearizable — the linearizability and fuzz-differential suites check
// that); what is pinned here is the deterministic part of its contract:
// a fresh queue starts direct, every kProbeEvery-th op probes the announce
// path, and kSoloStreakLimit solo combining passes always return the queue
// to direct mode.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include "evq/core/cas_array_queue.hpp"
#include "evq/core/combining_queue.hpp"
#include "evq/core/scq_queue.hpp"
#include "evq/telemetry/metrics.hpp"

namespace {

using namespace evq;

using CombCas = CombiningQueue<CasArrayQueue<std::uint64_t>>;
using CombScq = CombiningQueue<ScqQueue<std::uint64_t>>;

TEST(CombiningQueue, SingleThreadFifoAcrossProbeBoundary) {
  // More ops than kProbeEvery so at least one op per handle takes the
  // announce path (self-combines) — FIFO order must survive the route
  // change invisibly.
  CombCas q(8, "comb-unit-fifo");
  auto h = q.handle();
  std::vector<std::uint64_t> vals(CombCas::kProbeEvery * 3);
  std::size_t next_push = 0, next_pop = 0;
  while (next_pop < vals.size()) {
    for (int i = 0; i < 4 && next_push < vals.size(); ++i) {
      vals[next_push] = next_push;
      ASSERT_TRUE(q.try_push(h, &vals[next_push]));
      ++next_push;
    }
    for (int i = 0; i < 4 && next_pop < next_push; ++i) {
      std::uint64_t* got = q.try_pop(h);
      ASSERT_NE(got, nullptr);
      EXPECT_EQ(*got, next_pop) << "FIFO order broken at op " << next_pop;
      ++next_pop;
    }
  }
  EXPECT_EQ(q.try_pop(h), nullptr);
  EXPECT_EQ(q.size_estimate(), 0u);
}

TEST(CombiningQueue, CapacityComesFromTheInnerRing) {
  CombCas q(5, "comb-unit-capacity");  // rounds up to 8 inside the ring
  EXPECT_EQ(q.capacity(), 8u);
  EXPECT_EQ(q.capacity(), q.underlying().capacity());
}

TEST(CombiningQueue, BatchOpsKeepMaximalPrefixSemantics) {
  CombCas q(4, "comb-unit-batch");
  auto h = q.handle();
  std::uint64_t vals[6] = {0, 1, 2, 3, 4, 5};
  std::uint64_t* nodes[6];
  for (int i = 0; i < 6; ++i) {
    nodes[i] = &vals[i];
  }
  // Push 6 into a capacity-4 ring: exactly the first 4 land, in order.
  EXPECT_EQ(q.try_push_n(h, nodes, 6), 4u);
  EXPECT_EQ(q.size_estimate(), 4u);
  // Pop 6 from 4 items: exactly 4 come back, FIFO.
  std::uint64_t* out[6] = {};
  EXPECT_EQ(q.try_pop_n(h, out, 6), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(*out[i], i);
  }
  EXPECT_EQ(q.try_pop_n(h, out, 6), 0u);
}

TEST(CombiningQueue, ManyHandlesShareAnnounceRecordsSafely) {
  // More handles than announce records: slots >= kExclusiveRecords share the
  // upper record range round-robin and claim by CAS on their probe ops.
  // Drive each handle across its probe boundary so the shared-claim path
  // actually runs.
  CombScq q(64, "comb-unit-shared");
  std::vector<CombScq::Handle> handles;
  for (std::size_t i = 0; i < CombScq::kRecordCount + 4; ++i) {
    handles.push_back(q.handle());
  }
  std::uint64_t v = 0;
  for (auto& h : handles) {
    for (std::uint32_t i = 0; i < CombScq::kProbeEvery + 4; ++i) {
      v = i;
      ASSERT_TRUE(q.try_push(h, &v));
      std::uint64_t* got = q.try_pop(h);
      ASSERT_NE(got, nullptr);
      EXPECT_EQ(got, &v) << "single-item queue must round-trip the same node";
    }
  }
  EXPECT_EQ(q.size_estimate(), 0u);
}

TEST(CombiningQueue, ExclusiveAndSharedSlotsNeverShareARecord) {
  // The partition that makes the two claiming disciplines safe: exclusive
  // handles (slot < kExclusiveRecords) publish with a plain store and must
  // never land on a record a CAS-claiming shared handle can touch.
  CombScq q(64, "comb-unit-partition");
  static_assert(CombScq::kExclusiveRecords + CombScq::kSharedRecords ==
                CombScq::kRecordCount);
  static_assert(CombScq::kSharedRecords > 0,
                "handles past the exclusive range need records to share");
  std::vector<CombScq::Handle> handles;
  for (std::size_t i = 0; i < CombScq::kRecordCount * 3; ++i) {
    handles.push_back(q.handle());  // slots 0..47: both disciplines, wrapped
  }
  // Every op must still round-trip regardless of which range its slot maps
  // to (the mapping itself is private; its safety shows up as conservation
  // here and under the concurrent stress below).
  std::uint64_t v = 0;
  for (auto& h : handles) {
    ASSERT_TRUE(q.try_push(h, &v));
    ASSERT_EQ(q.try_pop(h), &v);
  }
  EXPECT_EQ(q.size_estimate(), 0u);
}

TEST(CombiningQueue, ConcurrentStressMoreThreadsThanRecordsConservesEveryItem) {
  // The regression test for the exclusive/shared announce race: more
  // threads than announce records, so exclusive-slot handles (plain-store
  // publish) and shared-slot handles (CAS claim) run concurrently. Before
  // the record-array partition, a sharer could claim the record an
  // exclusive owner was publishing to with a plain store; the combiner then
  // served ONE op and both waiters took the done word as their own result —
  // a lost push or a node returned twice, which the conservation check
  // below catches. kThreads > kRecordCount guarantees shared slots exist.
  constexpr std::size_t kThreads = CombScq::kRecordCount + 4;
  constexpr std::size_t kPerThread = 600;
  CombScq q(256, "comb-unit-stress-shared");
  std::vector<std::uint64_t> tokens(kThreads * kPerThread);
  std::vector<std::atomic<std::uint32_t>> popped(tokens.size());
  for (auto& p : popped) {
    p.store(0, std::memory_order_relaxed);
  }
  std::atomic<std::size_t> total_popped{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto h = q.handle();
      std::size_t mine_pushed = 0;
      std::size_t drained = 0;
      while (mine_pushed < kPerThread || drained < 64) {
        if (mine_pushed < kPerThread) {
          const std::size_t idx = t * kPerThread + mine_pushed;
          tokens[idx] = idx;
          if (q.try_push(h, &tokens[idx])) {
            ++mine_pushed;
          }
        } else {
          ++drained;
        }
        std::uint64_t* got = q.try_pop(h);
        if (got != nullptr) {
          popped[*got].fetch_add(1, std::memory_order_relaxed);
          total_popped.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  auto h = q.handle();
  while (std::uint64_t* got = q.try_pop(h)) {
    popped[*got].fetch_add(1, std::memory_order_relaxed);
    total_popped.fetch_add(1, std::memory_order_relaxed);
  }
  EXPECT_EQ(total_popped.load(), tokens.size());
  for (std::size_t i = 0; i < popped.size(); ++i) {
    EXPECT_EQ(popped[i].load(), 1u) << "token " << i << " lost or duplicated";
  }
}

TEST(CombiningQueue, StartsInDirectModeAndSoloOpsKeepItThere) {
  CombCas q(8, "comb-unit-direct");
  EXPECT_FALSE(q.combining_mode());
  auto h = q.handle();
  std::uint64_t v = 1;
  for (std::uint32_t i = 0; i < CombCas::kProbeEvery * 2; ++i) {
    ASSERT_TRUE(q.try_push(h, &v));
    ASSERT_EQ(q.try_pop(h), &v);
  }
  // A solo thread never observes contention: probes self-combine and the
  // mode stays (or re-settles) direct.
  EXPECT_FALSE(q.combining_mode());
}

TEST(CombiningQueue, SoloStreakDecaysCombiningModeDeterministically) {
  // Whatever state the mode flag is in, kSoloStreakLimit uncontended
  // combining passes flip it back to direct: in combining mode every op
  // announces, the solo owner always wins the lock, and each self-only
  // pass bumps the streak. Run well past the limit and require direct.
  CombCas q(8, "comb-unit-decay");
  auto h = q.handle();
  std::uint64_t v = 1;
  for (std::uint32_t i = 0; i < CombCas::kSoloStreakLimit * 3; ++i) {
    ASSERT_TRUE(q.try_push(h, &v));
    ASSERT_EQ(q.try_pop(h), &v);
  }
  EXPECT_FALSE(q.combining_mode());
}

TEST(CombiningQueue, ProbesCountInCombiningTelemetry) {
#if !EVQ_TELEMETRY
  GTEST_SKIP() << "counter values compiled out with EVQ_TELEMETRY=0";
#else
  CombCas q(8, "comb-unit-telemetry");
  auto h = q.handle();
  std::uint64_t v = 1;
  for (std::uint32_t i = 0; i < CombCas::kProbeEvery * 2; ++i) {
    ASSERT_TRUE(q.try_push(h, &v));
    ASSERT_EQ(q.try_pop(h), &v);
  }
  const telemetry::CounterSnapshot snap = q.metrics().snapshot();
  // 4 * kProbeEvery ops in direct mode -> at least a couple of probes, each
  // an announce-path submit that self-combines exactly one op.
  EXPECT_GE(snap[telemetry::Counter::kCombSubmit], 2u);
  EXPECT_GE(snap[telemetry::Counter::kCombCombine], 2u);
  EXPECT_GE(snap[telemetry::Counter::kCombBatchN], snap[telemetry::Counter::kCombCombine])
      << "every combining pass applies at least its own op";
  // The inner ring saw every op (direct and combined alike).
  const telemetry::CounterSnapshot ring = q.underlying().metrics().snapshot();
  EXPECT_EQ(ring[telemetry::Counter::kPushOk], CombCas::kProbeEvery * 2);
  EXPECT_EQ(ring[telemetry::Counter::kPopOk], CombCas::kProbeEvery * 2);
#endif
}

TEST(CombiningQueue, ConcurrentStressConservesEveryItem) {
  // 4 producers/consumers hammer one facade; afterwards every pushed token
  // must have been popped exactly once. Exercises announce, combine,
  // shared-slot fallback and withdraw under the sanitizer builds.
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 2000;
  CombScq q(64, "comb-unit-stress");
  std::vector<std::uint64_t> tokens(kThreads * kPerThread);
  std::vector<std::atomic<std::uint32_t>> popped(tokens.size());
  for (auto& p : popped) {
    p.store(0, std::memory_order_relaxed);
  }
  std::atomic<std::size_t> total_popped{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto h = q.handle();
      std::size_t mine_pushed = 0;
      std::size_t drained = 0;
      while (mine_pushed < kPerThread || drained < 64) {
        if (mine_pushed < kPerThread) {
          const std::size_t idx = t * kPerThread + mine_pushed;
          tokens[idx] = idx;
          if (q.try_push(h, &tokens[idx])) {
            ++mine_pushed;
          }
        } else {
          ++drained;  // tail drain: a few extra pops after our pushes are in
        }
        std::uint64_t* got = q.try_pop(h);
        if (got != nullptr) {
          popped[*got].fetch_add(1, std::memory_order_relaxed);
          total_popped.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  // Drain the remainder single-threaded.
  auto h = q.handle();
  while (std::uint64_t* got = q.try_pop(h)) {
    popped[*got].fetch_add(1, std::memory_order_relaxed);
    total_popped.fetch_add(1, std::memory_order_relaxed);
  }
  EXPECT_EQ(total_popped.load(), tokens.size());
  for (std::size_t i = 0; i < popped.size(); ++i) {
    EXPECT_EQ(popped[i].load(), 1u) << "token " << i << " lost or duplicated";
  }
}

}  // namespace
