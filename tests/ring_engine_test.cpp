// Ring-engine-specific contract tests: the batch operations and index-hint
// amortization added by core/ring_engine.hpp on top of the paper-faithful
// single-op protocol. The single-op semantics themselves are covered by the
// conformance, fuzz and torture suites; these tests pin down what the batch
// layer promises on top:
//
//  * try_push_n transfers a maximal FIFO prefix (stops exactly at capacity),
//    try_pop_n a maximal FIFO run (stops exactly at empty);
//  * batches interleave correctly with single ops and with wraparound, i.e.
//    the one-shot hint can never observe a stale index as fresher than it is;
//  * a zero-length batch is a no-op on state.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "evq/baselines/shann_queue.hpp"
#include "evq/baselines/tsigas_zhang_queue.hpp"
#include "evq/core/cas_array_queue.hpp"
#include "evq/core/llsc_array_queue.hpp"
#include "evq/core/queue_traits.hpp"
#include "evq/core/scq_queue.hpp"
#include "evq/llsc/packed_llsc.hpp"
#include "evq/verify/fifo_checkers.hpp"

namespace {

using namespace evq;
using verify::Token;

template <typename Q>
class RingEngineBatchTest : public ::testing::Test {};

using BatchQueues = ::testing::Types<LlscArrayQueue<Token, llsc::PackedLlsc>,
                                     LlscArrayQueue<Token, llsc::VersionedLlsc>,
                                     CasArrayQueue<Token>,
                                     baselines::ShannQueue<Token>,
                                     baselines::TsigasZhangQueue<Token>,
                                     ScqQueue<Token>>;
TYPED_TEST_SUITE(RingEngineBatchTest, BatchQueues);

// Every ring-engine instantiation must satisfy the batch concept.
static_assert(BatchPtrQueue<LlscArrayQueue<Token>>);
static_assert(BatchPtrQueue<CasArrayQueue<Token>>);
static_assert(BatchPtrQueue<baselines::ShannQueue<Token>>);
static_assert(BatchPtrQueue<baselines::TsigasZhangQueue<Token>>);
static_assert(BatchPtrQueue<ScqQueue<Token>>);

TYPED_TEST(RingEngineBatchTest, PushBatchStopsExactlyAtCapacity) {
  TypeParam q(8);
  auto h = q.handle();
  std::vector<Token> tokens(12);
  std::vector<Token*> in(tokens.size());
  for (std::uint64_t i = 0; i < tokens.size(); ++i) {
    tokens[i].seq = i;
    in[i] = &tokens[i];
  }
  EXPECT_EQ(q.try_push_n(h, in.data(), in.size()), q.capacity());
  EXPECT_FALSE(q.try_push(h, in[q.capacity()])) << "batch must have filled the ring";
  for (std::uint64_t i = 0; i < q.capacity(); ++i) {
    Token* out = q.try_pop(h);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->seq, i) << "batch prefix must land in FIFO order";
  }
  EXPECT_EQ(q.try_pop(h), nullptr);
}

TYPED_TEST(RingEngineBatchTest, PopBatchStopsExactlyAtEmpty) {
  TypeParam q(8);
  auto h = q.handle();
  std::vector<Token> tokens(5);
  for (std::uint64_t i = 0; i < tokens.size(); ++i) {
    tokens[i].seq = i;
    ASSERT_TRUE(q.try_push(h, &tokens[i]));
  }
  std::vector<Token*> out(8, nullptr);
  EXPECT_EQ(q.try_pop_n(h, out.data(), out.size()), tokens.size());
  for (std::uint64_t i = 0; i < tokens.size(); ++i) {
    EXPECT_EQ(out[i]->seq, i);
  }
  EXPECT_EQ(q.try_pop_n(h, out.data(), out.size()), 0u) << "empty queue must yield a zero batch";
}

TYPED_TEST(RingEngineBatchTest, ZeroLengthBatchesAreNoOps) {
  TypeParam q(4);
  auto h = q.handle();
  Token tok{0, 7};
  EXPECT_EQ(q.try_push_n(h, nullptr, 0), 0u);
  EXPECT_EQ(q.try_pop_n(h, nullptr, 0), 0u);
  ASSERT_TRUE(q.try_push(h, &tok));
  EXPECT_EQ(q.try_pop_n(h, nullptr, 0), 0u);
  EXPECT_EQ(q.try_pop(h), &tok);
}

TYPED_TEST(RingEngineBatchTest, BatchesInterleaveWithSingleOpsAcrossWraps) {
  // Capacity 4, 64 rounds of (batch-push 3, single push 1, batch-pop 2,
  // single pops): every round crosses the slot-array boundary, so a stale
  // push or pop hint would surface as a wrong-generation slot access.
  TypeParam q(4);
  auto h = q.handle();
  std::vector<Token> tokens(4);
  std::uint64_t seq = 0;
  for (int round = 0; round < 64; ++round) {
    std::vector<Token*> in(3);
    for (int k = 0; k < 3; ++k) {
      tokens[k].seq = seq++;
      in[k] = &tokens[k];
    }
    ASSERT_EQ(q.try_push_n(h, in.data(), 3), 3u) << "round " << round;
    tokens[3].seq = seq++;
    ASSERT_TRUE(q.try_push(h, &tokens[3]));
    ASSERT_EQ(q.try_push_n(h, in.data(), 1), 0u) << "full must stop a batch, round " << round;

    std::vector<Token*> out(2, nullptr);
    ASSERT_EQ(q.try_pop_n(h, out.data(), 2), 2u);
    EXPECT_EQ(out[0]->seq, seq - 4);
    EXPECT_EQ(out[1]->seq, seq - 3);
    Token* third = q.try_pop(h);
    ASSERT_NE(third, nullptr);
    EXPECT_EQ(third->seq, seq - 2);
    ASSERT_EQ(q.try_pop_n(h, out.data(), 2), 1u) << "partial batch at the tail, round " << round;
    EXPECT_EQ(out[0]->seq, seq - 1);
    EXPECT_EQ(q.try_pop(h), nullptr) << "round " << round;
  }
}

TYPED_TEST(RingEngineBatchTest, LargeBatchesConserveUnderMpmcStress) {
  // 2 producers push batches of 1..5, 2 consumers pop batches of 1..5;
  // conservation through the batch paths under real interleaving.
  constexpr std::size_t kProducers = 2;
  constexpr std::size_t kConsumers = 2;
  constexpr std::uint64_t kPerProducer = 3000;
  TypeParam q(16);
  std::vector<std::vector<Token>> tokens(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    tokens[p].resize(kPerProducer);
    for (std::uint64_t i = 0; i < kPerProducer; ++i) {
      tokens[p][i].producer = static_cast<std::uint32_t>(p);
      tokens[p][i].seq = i;
    }
  }
  std::vector<verify::ConsumerLog> logs(kConsumers);
  std::atomic<std::uint64_t> popped{0};
  constexpr std::uint64_t kTotal = kProducers * kPerProducer;
  std::vector<std::thread> threads;
  for (std::size_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      auto h = q.handle();
      std::uint64_t sent = 0;
      while (sent < kPerProducer) {
        std::vector<Token*> in;
        const std::uint64_t n = std::min<std::uint64_t>(1 + (sent % 5), kPerProducer - sent);
        for (std::uint64_t k = 0; k < n; ++k) {
          in.push_back(&tokens[p][sent + k]);
        }
        const std::size_t ok = q.try_push_n(h, in.data(), in.size());
        sent += ok;
        if (ok == 0) {
          std::this_thread::yield();
        }
      }
    });
  }
  for (std::size_t c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&, c] {
      auto h = q.handle();
      logs[c].reserve(kTotal);
      std::vector<Token*> out(5, nullptr);
      for (;;) {
        const std::size_t n = q.try_pop_n(h, out.data(), 1 + (logs[c].size() % 5));
        if (n > 0) {
          for (std::size_t k = 0; k < n; ++k) {
            logs[c].push_back(*out[k]);
          }
          popped.fetch_add(n);
        } else if (popped.load() >= kTotal) {
          return;
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  const std::vector<std::uint64_t> pushed(kProducers, kPerProducer);
  auto conservation = verify::check_conservation(logs, pushed);
  EXPECT_TRUE(conservation.ok) << conservation.reason;
  auto order = verify::check_per_producer_order(logs, kProducers);
  EXPECT_TRUE(order.ok) << order.reason;
}

// ---------------------------------------------------------------------------
// IndexPolicy advance attribution
// ---------------------------------------------------------------------------
// The RingIndexPolicy contract (ring_engine.hpp): advance() returns true
// exactly when THIS call moved the index from `expected` to `expected + 1`,
// and every index move is attributed to exactly one advance()/reserve()
// return — the invariant the help-chain flow arrows are built on. These
// tests pin the contract for all three policy generations so a future
// policy cannot silently break attribution.

template <typename P>
void check_conditional_advance_attribution() {
  typename P::Cell cell{};
  ASSERT_EQ(P::load(cell), 0u);
  EXPECT_TRUE(P::advance(cell, 0)) << "moving 0 -> 1 is this call's move";
  EXPECT_EQ(P::load(cell), 1u);
  EXPECT_FALSE(P::advance(cell, 0)) << "stale expected must report no movement";
  EXPECT_EQ(P::load(cell), 1u) << "a false advance must not have moved the index";
  EXPECT_TRUE(P::advance(cell, 1));
  EXPECT_EQ(P::load(cell), 2u);
}

TEST(IndexPolicyAttribution, LlscAdvanceReportsOwnMovesOnly) {
  check_conditional_advance_attribution<LlscIndexPolicy>();
}

TEST(IndexPolicyAttribution, CasAdvanceReportsOwnMovesOnly) {
  check_conditional_advance_attribution<CasIndexPolicy<kCasIndexAdvancePoint>>();
}

TEST(IndexPolicyAttribution, FaaAdvanceReportsOwnMovesOnly) {
  check_conditional_advance_attribution<ScqIndexPolicy>();
}

TEST(IndexPolicyAttribution, FaaReserveAlwaysAdvancesByOneAndReturnsTheTicket) {
  ScqIndexPolicy::Cell cell{};
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(ScqIndexPolicy::reserve(cell), i) << "the prior value is the caller's ticket";
    EXPECT_EQ(ScqIndexPolicy::load(cell), i + 1) << "reserve moves by exactly one";
  }
}

TEST(IndexPolicyAttribution, FaaReserveAttributesEveryMoveToExactlyOneCaller) {
  // Unconditional advancement stays exactly attributed under contention:
  // across any interleaving, the claimed tickets partition the index range —
  // no ticket lost, none handed out twice.
  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kPerThread = 10000;
  ScqIndexPolicy::Cell cell{};
  std::vector<std::vector<std::uint64_t>> tickets(kThreads);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      tickets[t].reserve(kPerThread);
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        tickets[t].push_back(ScqIndexPolicy::reserve(cell));
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  std::vector<std::uint64_t> all;
  for (const auto& mine : tickets) {
    all.insert(all.end(), mine.begin(), mine.end());
  }
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), kThreads * kPerThread);
  for (std::uint64_t i = 0; i < all.size(); ++i) {
    ASSERT_EQ(all[i], i) << "every index move owned by exactly one reserve() return";
  }
  EXPECT_EQ(ScqIndexPolicy::load(cell), kThreads * kPerThread);
}

TEST(IndexPolicyAttribution, FaaCatchUpReportsOwnJumpsOnly) {
  ScqIndexPolicy::Cell cell{};
  EXPECT_TRUE(ScqIndexPolicy::catch_up(cell, 0, 5)) << "the jump 0 -> 5 is this call's move";
  EXPECT_EQ(ScqIndexPolicy::load(cell), 5u);
  EXPECT_FALSE(ScqIndexPolicy::catch_up(cell, 0, 9)) << "stale expected must report no movement";
  EXPECT_EQ(ScqIndexPolicy::load(cell), 5u);
}

}  // namespace
