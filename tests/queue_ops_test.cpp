// Tests for the waiting wrappers (push_wait / pop_wait and their bounded
// variants).
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>

#include "evq/core/cas_array_queue.hpp"
#include "evq/core/llsc_array_queue.hpp"
#include "evq/core/queue_ops.hpp"

namespace {

using namespace evq;

struct Item {
  std::uint64_t id = 0;
};

TEST(QueueOps, PushWaitSucceedsImmediatelyWhenSpace) {
  CasArrayQueue<Item> q(4);
  auto h = q.handle();
  Item a{1};
  EXPECT_EQ(push_wait(q, h, &a), 0u);  // zero retries
  EXPECT_EQ(q.try_pop(h), &a);
}

TEST(QueueOps, PopWaitReturnsImmediatelyWhenNonEmpty) {
  CasArrayQueue<Item> q(4);
  auto h = q.handle();
  Item a{1};
  ASSERT_TRUE(q.try_push(h, &a));
  std::uint64_t retries = 99;
  EXPECT_EQ(pop_wait(q, h, &retries), &a);
  EXPECT_EQ(retries, 0u);
}

TEST(QueueOps, PushWaitBlocksUntilConsumerMakesRoom) {
  LlscArrayQueue<Item> q(2);
  Item items[3];
  auto h = q.handle();
  ASSERT_TRUE(q.try_push(h, &items[0]));
  ASSERT_TRUE(q.try_push(h, &items[1]));
  std::thread consumer([&q] {
    auto ch = q.handle();
    (void)pop_wait(q, ch);  // frees one slot (eventually)
  });
  const std::uint64_t retries = push_wait(q, h, &items[2]);
  consumer.join();
  EXPECT_GE(retries, 0u);  // must have completed either way
  // Queue now holds items[1], items[2].
  EXPECT_EQ(q.try_pop(h), &items[1]);
  EXPECT_EQ(q.try_pop(h), &items[2]);
}

TEST(QueueOps, PopWaitBlocksUntilProducerDelivers) {
  CasArrayQueue<Item> q(2);
  Item a{7};
  std::thread producer([&q, &a] {
    auto ph = q.handle();
    (void)push_wait(q, ph, &a);
  });
  auto h = q.handle();
  EXPECT_EQ(pop_wait(q, h), &a);
  producer.join();
}

TEST(QueueOps, BoundedPushGivesUpOnPersistentlyFullQueue) {
  CasArrayQueue<Item> q(2);
  auto h = q.handle();
  Item items[3];
  ASSERT_TRUE(q.try_push(h, &items[0]));
  ASSERT_TRUE(q.try_push(h, &items[1]));
  EXPECT_FALSE(push_wait_bounded(q, h, &items[2], 50));
}

TEST(QueueOps, BoundedPopGivesUpOnPersistentlyEmptyQueue) {
  CasArrayQueue<Item> q(2);
  auto h = q.handle();
  EXPECT_EQ(pop_wait_bounded(q, h, 50), nullptr);
}

TEST(QueueOps, BoundedVariantsSucceedWhenPossible) {
  CasArrayQueue<Item> q(2);
  auto h = q.handle();
  Item a{1};
  EXPECT_TRUE(push_wait_bounded(q, h, &a, 0));  // attempt 0 suffices
  EXPECT_EQ(pop_wait_bounded(q, h, 0), &a);
}

}  // namespace
