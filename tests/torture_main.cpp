// Custom main for the torture binary: adds a `--filter <substring>` flag
// (documented in EXPERIMENTS.md) so a developer iterating on one queue can
// run just its slice of the matrix without memorizing gtest filter syntax:
//
//   ./evq_torture --filter comb-scq        # every profile for one queue
//   ./evq_torture --filter sc_storm        # every queue under one profile
//
// The substring is matched against full test names with wildcards on both
// sides (gtest test names use '_' where registry names use '-'; both spellings
// are accepted — '-' is translated). All other arguments, including native
// --gtest_* flags, pass through to googletest untouched; an explicit
// --gtest_filter wins over --filter because it is applied later by
// InitGoogleTest.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>

namespace {

/// Extracts `--filter foo` / `--filter=foo` from argv (compacting it) and
/// returns the substring, or "" when absent.
std::string extract_filter(int* argc, char** argv) {
  std::string filter;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--filter") == 0 && i + 1 < *argc) {
      filter = argv[++i];
    } else if (std::strncmp(argv[i], "--filter=", 9) == 0) {
      filter = argv[i] + 9;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return filter;
}

}  // namespace

int main(int argc, char** argv) {
  std::string filter = extract_filter(&argc, argv);
  if (!filter.empty()) {
    for (char& c : filter) {
      if (c == '-') {
        c = '_';  // registry names appear underscored in test names
      }
    }
    ::testing::GTEST_FLAG(filter) = "*" + filter + "*";
    std::fprintf(stderr, "[torture] --filter %s -> --gtest_filter=%s\n", filter.c_str(),
                 ::testing::GTEST_FLAG(filter).c_str());
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
