// ShardedQueue contract tests (core/sharded_queue.hpp): capacity splitting,
// handle affinity, overflow-on-full, steal-on-empty, batch delegation, MPMC
// conservation, and composition under ValueQueue. The sharded layer cannot
// join the strict typed conformance suite — it deliberately trades the
// boundary behaviours that suite pins down (e.g. a capacity-N request rounds
// up per shard, and cross-shard scans drop per-producer MPMC order) — so its
// actual contract is specified here instead.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "evq/core/cas_array_queue.hpp"
#include "evq/core/llsc_array_queue.hpp"
#include "evq/core/sharded_queue.hpp"
#include "evq/core/value_queue.hpp"
#include "evq/llsc/packed_llsc.hpp"
#include "evq/verify/fifo_checkers.hpp"

namespace {

using namespace evq;
using verify::Token;

template <typename Q>
class ShardedQueueTest : public ::testing::Test {};

using ShardedTypes = ::testing::Types<ShardedQueue<LlscArrayQueue<Token, llsc::PackedLlsc>>,
                                      ShardedQueue<CasArrayQueue<Token>>>;
TYPED_TEST_SUITE(ShardedQueueTest, ShardedTypes);

TYPED_TEST(ShardedQueueTest, CapacityIsSummedAcrossShards) {
  TypeParam q(16, 4);
  EXPECT_EQ(q.shard_count(), 4u);
  EXPECT_EQ(q.capacity(), 16u);
  for (std::size_t s = 0; s < q.shard_count(); ++s) {
    EXPECT_EQ(q.shard(s).capacity(), 4u);
  }
  // Tiny totals collapse the shard count rather than inflate the capacity.
  TypeParam tiny(4, 4);
  EXPECT_EQ(tiny.shard_count(), 2u);
  EXPECT_EQ(tiny.capacity(), 4u);
  TypeParam minimal(1, 4);
  EXPECT_EQ(minimal.shard_count(), 1u);
  EXPECT_EQ(minimal.capacity(), 2u);
}

TYPED_TEST(ShardedQueueTest, SingleHandleFillDrainIsFifo) {
  // One handle scans shards in a fixed order on both sides, so a sequential
  // fill-then-drain is still FIFO even though the items span shards.
  TypeParam q(8, 4);
  auto h = q.handle();
  std::vector<Token> tokens(8);
  for (std::uint64_t i = 0; i < tokens.size(); ++i) {
    tokens[i].seq = i;
    ASSERT_TRUE(q.try_push(h, &tokens[i]));
  }
  Token extra;
  EXPECT_FALSE(q.try_push(h, &extra)) << "push must fail only when every shard is full";
  for (std::uint64_t i = 0; i < tokens.size(); ++i) {
    Token* out = q.try_pop(h);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->seq, i);
  }
  EXPECT_EQ(q.try_pop(h), nullptr);
}

TYPED_TEST(ShardedQueueTest, OverflowSpillsToOtherShards) {
  TypeParam q(8, 4);
  auto h = q.handle();
  // 8 pushes through ONE handle must succeed even though its affinity shard
  // holds only 2: the scan overflows into the remaining shards.
  std::vector<Token> tokens(8);
  for (auto& tok : tokens) {
    ASSERT_TRUE(q.try_push(h, &tok));
  }
  std::size_t populated = 0;
  for (std::size_t s = 0; s < q.shard_count(); ++s) {
    populated += q.shard(s).size_estimate() > 0 ? 1 : 0;
  }
  EXPECT_EQ(populated, q.shard_count()) << "a full structure must have spilled into every shard";
}

TYPED_TEST(ShardedQueueTest, StealRecoversItemsFromForeignShards) {
  TypeParam q(8, 4);
  // Producer handle and consumer handle get different affinity shards
  // (round-robin), so every consumer pop of a foreign item is a steal.
  auto producer = q.handle();
  auto consumer = q.handle();
  std::vector<Token> tokens(8);
  for (std::uint64_t i = 0; i < tokens.size(); ++i) {
    tokens[i].seq = i;
    ASSERT_TRUE(q.try_push(producer, &tokens[i]));
  }
  std::multiset<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < tokens.size(); ++i) {
    Token* out = q.try_pop(consumer);
    ASSERT_NE(out, nullptr) << "steal-on-empty must find foreign shards' items";
    seen.insert(out->seq);
  }
  EXPECT_EQ(seen.size(), tokens.size());
  EXPECT_EQ(q.try_pop(consumer), nullptr);
}

TYPED_TEST(ShardedQueueTest, BatchOpsSpanShards) {
  TypeParam q(8, 4);
  auto h = q.handle();
  std::vector<Token> tokens(12);
  std::vector<Token*> in(tokens.size());
  for (std::uint64_t i = 0; i < tokens.size(); ++i) {
    tokens[i].seq = i;
    in[i] = &tokens[i];
  }
  EXPECT_EQ(q.try_push_n(h, in.data(), in.size()), q.capacity())
      << "a batch must fill ALL shards before reporting full";
  std::vector<Token*> out(tokens.size(), nullptr);
  EXPECT_EQ(q.try_pop_n(h, out.data(), out.size()), q.capacity())
      << "a batch pop must drain ALL shards before reporting empty";
  std::multiset<Token*> seen(out.begin(), out.begin() + q.capacity());
  for (std::size_t i = 0; i < q.capacity(); ++i) {
    EXPECT_EQ(seen.count(in[i]), 1u);
  }
  EXPECT_EQ(q.try_pop(h), nullptr);
}

TYPED_TEST(ShardedQueueTest, MpmcConservationUnderStress) {
  constexpr std::size_t kProducers = 2;
  constexpr std::size_t kConsumers = 2;
  constexpr std::uint64_t kPerProducer = 4000;
  TypeParam q(32, 4);
  std::vector<std::vector<Token>> tokens(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    tokens[p].resize(kPerProducer);
    for (std::uint64_t i = 0; i < kPerProducer; ++i) {
      tokens[p][i].producer = static_cast<std::uint32_t>(p);
      tokens[p][i].seq = i;
    }
  }
  std::vector<verify::ConsumerLog> logs(kConsumers);
  std::atomic<std::uint64_t> popped{0};
  constexpr std::uint64_t kTotal = kProducers * kPerProducer;
  std::vector<std::thread> threads;
  for (std::size_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      auto h = q.handle();
      for (auto& tok : tokens[p]) {
        while (!q.try_push(h, &tok)) {
          std::this_thread::yield();
        }
      }
    });
  }
  for (std::size_t c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&, c] {
      auto h = q.handle();
      logs[c].reserve(kTotal);
      for (;;) {
        Token* tok = q.try_pop(h);
        if (tok != nullptr) {
          logs[c].push_back(*tok);
          popped.fetch_add(1);
        } else if (popped.load() >= kTotal) {
          return;
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  // Conservation holds in full; per-producer order is NOT asserted — the
  // sharded layer explicitly trades it (see the header comment).
  const std::vector<std::uint64_t> pushed(kProducers, kPerProducer);
  auto conservation = verify::check_conservation(logs, pushed);
  EXPECT_TRUE(conservation.ok) << conservation.reason;
}

TEST(ShardedValueQueue, ComposesUnderValueQueue) {
  // The single-parameter aliases make the sharded layer a drop-in engine for
  // the value-semantics adapter.
  ValueQueue<int, ShardedCasQueue> q(8);
  auto h = q.handle();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(q.try_push(h, i));
  }
  std::multiset<int> seen;
  while (auto v = q.try_pop(h)) {
    seen.insert(*v);
  }
  EXPECT_EQ(seen.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(seen.count(i), 1u);
  }
}

TEST(ShardedQueueAffinity, HandlesRotateAcrossShards) {
  ShardedQueue<CasArrayQueue<Token>> q(8, 4);
  // Four fresh handles get four distinct affinity shards: a push through
  // each lands in a different shard.
  std::vector<Token> tokens(4);
  for (std::size_t i = 0; i < 4; ++i) {
    auto h = q.handle();
    ASSERT_TRUE(q.try_push(h, &tokens[i]));
  }
  for (std::size_t s = 0; s < q.shard_count(); ++s) {
    EXPECT_EQ(q.shard(s).size_estimate(), 1u) << "shard " << s;
  }
}

}  // namespace
