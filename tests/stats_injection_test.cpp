// Deterministic coverage for the ring engine's algorithm-level op_stats
// counters (slot_sc_attempts / slot_sc_failures / help_advances), using the
// fault-injection substrate to force the exact schedules — this TU is part
// of evq_torture and is compiled with EVQ_INJECT_ENABLED=1.
//
// Both paper algorithms must report:
//  * an SC failure when the slot commit loses its reservation (forced here
//    with an injected spurious failure — one per queue, so the counts are
//    exact, not statistical);
//  * a help-advance when an operation finds a lagging index some peer
//    committed past but did not publish (forced by parking the peer between
//    its slot commit and the Tail update, the paper's E15→E16 window).
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "evq/common/op_stats.hpp"
#include "evq/core/cas_array_queue.hpp"
#include "evq/core/llsc_array_queue.hpp"
#include "evq/inject/inject.hpp"
#include "evq/inject/profile.hpp"
#include "evq/llsc/packed_llsc.hpp"
#include "evq/verify/fifo_checkers.hpp"

#if !defined(EVQ_INJECT_ENABLED) || !EVQ_INJECT_ENABLED
#error "stats_injection_test.cpp must be compiled with EVQ_INJECT_ENABLED=1"
#endif

namespace evq {
namespace {

using verify::Token;

/// Forces exactly one spurious SC failure at the first point whose name
/// contains `match`.
class ScFailOnce final : public inject::Injector {
 public:
  explicit ScFailOnce(const char* match) noexcept : match_(match) {}

  void at_point(const char* /*point*/) noexcept override {}

  bool fail_sc(const char* point) noexcept override {
    if (!armed_ || std::strstr(point, match_) == nullptr) {
      return false;
    }
    armed_ = false;
    return true;
  }

 private:
  const char* match_;
  bool armed_ = true;
};

TEST(StatsInjection, LlscQueueReportsForcedScFailure) {
  LlscArrayQueue<Token, llsc::PackedLlsc> q(4);
  ScFailOnce injector("packed_llsc.sc");
  inject::ScopedInjector install(injector);

  stats::OpCounters counters;
  stats::ScopedOpRecording rec(counters);
  auto h = q.handle();
  Token tok{0, 0};
  ASSERT_TRUE(q.try_push(h, &tok));

  // One failed slot SC (injected), one successful retry. The index-advance
  // SCs (E13/E17) are deliberately NOT slot attempts.
  EXPECT_EQ(counters.slot_sc_failures, 1u);
  EXPECT_EQ(counters.slot_sc_attempts, 2u);
  EXPECT_EQ(q.try_pop(h), &tok);
}

TEST(StatsInjection, CasQueueReportsForcedScFailure) {
  CasArrayQueue<Token> q(4);
  ScFailOnce injector("sim_llsc.sc");
  inject::ScopedInjector install(injector);

  stats::OpCounters counters;
  stats::ScopedOpRecording rec(counters);
  auto h = q.handle();
  Token tok{0, 0};
  ASSERT_TRUE(q.try_push(h, &tok));

  EXPECT_EQ(counters.slot_sc_failures, 1u);
  EXPECT_EQ(counters.slot_sc_attempts, 2u);
  EXPECT_EQ(q.try_pop(h), &tok);
}

/// Parks a victim pusher at `stall_point` — after its slot commit, before
/// its Tail advance (the E15→E16 window) — then pushes from the observing
/// thread, which must repair the lagging Tail (one help-advance) before its
/// own token lands.
template <typename Q>
void run_help_advance_schedule(Q& q, const char* stall_point) {
  inject::StallGate gate(1u << 26);
  const inject::Profile script{"scripted-help-window",
                               "park one pusher between slot commit and Tail publication",
                               /*sc_fail=*/0, 100, "",
                               /*delay=*/0, 100, 0, "",
                               /*stall=*/stall_point, inject::Role::kAny};

  Token committed{0, 0};
  std::thread victim([&] {
    inject::ProfileInjector injector(script, /*seed=*/1, /*thread_id=*/0,
                                     inject::Role::kProducer, &gate);
    inject::ScopedInjector install(injector);
    auto h = q.handle();
    EXPECT_TRUE(q.try_push(h, &committed));
  });
  for (int i = 0; i < 1 << 26 && !gate.parked(); ++i) {
    std::this_thread::yield();
  }
  ASSERT_TRUE(gate.parked()) << "victim never reached " << stall_point;

  stats::OpCounters counters;
  Token helper{1, 0};
  auto h = q.handle();
  {
    stats::ScopedOpRecording rec(counters);
    ASSERT_TRUE(q.try_push(h, &helper));
  }
  EXPECT_EQ(counters.help_advances, 1u)
      << "the observing pusher must advance the parked peer's Tail exactly once";
  EXPECT_EQ(counters.slot_sc_failures, 0u);

  gate.release();
  victim.join();

  // The victim committed first (its slot precedes the helper's).
  EXPECT_EQ(q.try_pop(h), &committed);
  EXPECT_EQ(q.try_pop(h), &helper);
  EXPECT_EQ(q.try_pop(h), nullptr);
}

TEST(StatsInjection, LlscQueueReportsHelpAdvance) {
  LlscArrayQueue<Token, llsc::PackedLlsc> q(4);
  run_help_advance_schedule(q, "core.llsc.push.committed");
}

TEST(StatsInjection, CasQueueReportsHelpAdvance) {
  CasArrayQueue<Token> q(4);
  run_help_advance_schedule(q, "core.cas.push.committed");
}

}  // namespace
}  // namespace evq
