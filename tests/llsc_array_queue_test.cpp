// Tests for Algorithm 1 (Fig. 3), under each LL/SC emulation policy.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "evq/core/llsc_array_queue.hpp"
#include "evq/llsc/packed_llsc.hpp"
#include "evq/llsc/versioned_llsc.hpp"
#include "evq/llsc/weak_llsc.hpp"

namespace {

using namespace evq;

struct Item {
  std::uint64_t id = 0;
};

template <typename T>
using Weak10 = llsc::WeakLlsc<llsc::VersionedLlsc<T>, 10>;

template <typename Q>
class LlscQueueTest : public ::testing::Test {};

using QueueTypes = ::testing::Types<LlscArrayQueue<Item, llsc::VersionedLlsc>,
                                    LlscArrayQueue<Item, llsc::PackedLlsc>,
                                    LlscArrayQueue<Item, Weak10>>;
TYPED_TEST_SUITE(LlscQueueTest, QueueTypes);

TYPED_TEST(LlscQueueTest, EmptyQueuePopsNull) {
  TypeParam q(8);
  auto h = q.handle();
  EXPECT_EQ(q.try_pop(h), nullptr);
}

TYPED_TEST(LlscQueueTest, PushPopSingleItem) {
  TypeParam q(8);
  auto h = q.handle();
  Item a{1};
  EXPECT_TRUE(q.try_push(h, &a));
  EXPECT_EQ(q.try_pop(h), &a);
  EXPECT_EQ(q.try_pop(h), nullptr);
}

TYPED_TEST(LlscQueueTest, FifoOrderPreserved) {
  TypeParam q(16);
  auto h = q.handle();
  Item items[10];
  for (std::uint64_t i = 0; i < 10; ++i) {
    items[i].id = i;
    ASSERT_TRUE(q.try_push(h, &items[i]));
  }
  for (std::uint64_t i = 0; i < 10; ++i) {
    Item* out = q.try_pop(h);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->id, i);
  }
}

TYPED_TEST(LlscQueueTest, CapacityRoundsUpToPowerOfTwo) {
  TypeParam q(5);
  EXPECT_EQ(q.capacity(), 8u);
  TypeParam q2(8);
  EXPECT_EQ(q2.capacity(), 8u);
  TypeParam q3(1);
  EXPECT_EQ(q3.capacity(), 2u);
}

TYPED_TEST(LlscQueueTest, FullQueueRejectsPush) {
  TypeParam q(4);
  auto h = q.handle();
  Item items[5];
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.try_push(h, &items[i]));
  }
  EXPECT_FALSE(q.try_push(h, &items[4])) << "5th push into capacity-4 queue must report full";
  ASSERT_NE(q.try_pop(h), nullptr);
  EXPECT_TRUE(q.try_push(h, &items[4])) << "space freed: push must succeed again";
}

TYPED_TEST(LlscQueueTest, WrapAroundManyTimes) {
  TypeParam q(4);
  auto h = q.handle();
  Item items[3];
  for (std::uint64_t round = 0; round < 1000; ++round) {
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(q.try_push(h, &items[i]));
    }
    for (int i = 0; i < 3; ++i) {
      ASSERT_EQ(q.try_pop(h), &items[i]);
    }
  }
  EXPECT_EQ(q.head_index(), 3000u);
  EXPECT_EQ(q.tail_index(), 3000u);
}

TYPED_TEST(LlscQueueTest, SizeEstimateTracksOccupancy) {
  TypeParam q(8);
  auto h = q.handle();
  Item items[5];
  EXPECT_EQ(q.size_estimate(), 0u);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.try_push(h, &items[i]));
  }
  EXPECT_EQ(q.size_estimate(), 5u);
  (void)q.try_pop(h);
  EXPECT_EQ(q.size_estimate(), 4u);
}

TYPED_TEST(LlscQueueTest, AlternatingPushPopAtCapacityBoundary) {
  TypeParam q(2);
  auto h = q.handle();
  Item a{1};
  Item b{2};
  for (int round = 0; round < 500; ++round) {
    ASSERT_TRUE(q.try_push(h, &a));
    ASSERT_TRUE(q.try_push(h, &b));
    ASSERT_FALSE(q.try_push(h, &a));  // full
    ASSERT_EQ(q.try_pop(h), &a);
    ASSERT_EQ(q.try_pop(h), &b);
    ASSERT_EQ(q.try_pop(h), nullptr);  // empty
  }
}

TYPED_TEST(LlscQueueTest, TwoThreadPingPong) {
  TypeParam q(4);
  constexpr std::uint64_t kItems = 20000;
  std::vector<Item> items(kItems);
  std::thread producer([&] {
    auto h = q.handle();
    for (std::uint64_t i = 0; i < kItems; ++i) {
      items[i].id = i;
      while (!q.try_push(h, &items[i])) {
        std::this_thread::yield();
      }
    }
  });
  std::uint64_t expected = 0;
  bool order_ok = true;
  {
    auto h = q.handle();
    while (expected < kItems) {
      Item* out = q.try_pop(h);
      if (out == nullptr) {
        std::this_thread::yield();
        continue;
      }
      order_ok = order_ok && (out->id == expected);
      ++expected;
    }
  }
  producer.join();
  EXPECT_TRUE(order_ok) << "single-producer/single-consumer order must be exact FIFO";
}

}  // namespace
