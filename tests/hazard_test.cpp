// Tests for the hazard-pointer domain: protection semantics, scan behaviour
// (sorted and unsorted), thresholds, and population-oblivious records.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "evq/hazard/hp_domain.hpp"

namespace {

using namespace evq::hazard;

struct HpNode {
  int id = 0;
};

using Domain = HpDomain<HpNode, 2>;

TEST(Hazard, AcquireRecyclesReleasedRecords) {
  Domain domain;
  auto* r1 = domain.acquire();
  domain.release(r1);
  auto* r2 = domain.acquire();
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(domain.record_count(), 1u);
  domain.release(r2);
}

TEST(Hazard, ConcurrentHoldersGetDistinctRecords) {
  Domain domain;
  auto* r1 = domain.acquire();
  auto* r2 = domain.acquire();
  EXPECT_NE(r1, r2);
  EXPECT_EQ(domain.record_count(), 2u);
  domain.release(r1);
  domain.release(r2);
}

TEST(Hazard, ProtectPinsCurrentPointer) {
  Domain domain;
  auto* rec = domain.acquire();
  auto* node = new HpNode{1};
  std::atomic<HpNode*> src{node};
  HpNode* got = domain.protect(rec, 0, src);
  EXPECT_EQ(got, node);
  EXPECT_EQ(rec->hp[0].load(), node);
  domain.clear(rec, 0);
  domain.release(rec);
  delete node;
}

TEST(Hazard, ProtectFollowsConcurrentChange) {
  // If the source changes between read and publication, protect must retry
  // and return the (eventually) consistent pointer.
  Domain domain;
  auto* rec = domain.acquire();
  auto* a = new HpNode{1};
  std::atomic<HpNode*> src{a};
  EXPECT_EQ(domain.protect(rec, 0, src), a);
  domain.release(rec);
  delete a;
}

TEST(Hazard, ScanFreesUnprotectedNodes) {
  std::atomic<int> freed{0};
  Domain domain(ScanMode::kUnsorted, 4, [&freed](HpNode* n) {
    ++freed;
    delete n;
  });
  auto* rec = domain.acquire();
  rec->retired.push_back(new HpNode{1});
  rec->retired.push_back(new HpNode{2});
  EXPECT_EQ(domain.scan(*rec), 2u);
  EXPECT_EQ(freed.load(), 2);
  EXPECT_TRUE(rec->retired.empty());
  domain.release(rec);
}

TEST(Hazard, CustomReclaimerIsUsedOnEveryPath) {
  // A pool-style reclaimer that never calls delete: nodes are owned by
  // `pool` and the domain must only hand them back. Exercises all three
  // reclamation paths — threshold scan (retire), release() leftovers, and
  // the destructor's quiescent sweep. A domain that bypasses the reclaimer
  // on any path double-frees pool-owned storage.
  std::vector<std::unique_ptr<HpNode>> pool;
  for (int i = 0; i < 8; ++i) {
    pool.push_back(std::make_unique<HpNode>(HpNode{i}));
  }
  std::atomic<int> returned{0};
  {
    Domain domain(ScanMode::kUnsorted, 4, [&returned](HpNode*) { ++returned; });
    auto* rec = domain.acquire();
    // 4 retires hit the threshold scan (1 record x multiplier 4).
    for (int i = 0; i < 4; ++i) {
      domain.retire(rec, pool[static_cast<std::size_t>(i)].get());
    }
    EXPECT_EQ(returned.load(), 4) << "threshold scan must use the domain reclaimer";
    // 2 leftovers are swept by release()'s last-chance scan.
    domain.retire(rec, pool[4].get());
    domain.retire(rec, pool[5].get());
    domain.release(rec);
    EXPECT_EQ(returned.load(), 6) << "release() scan must use the domain reclaimer";
    // 2 more stay retired on the (released) record until the domain dies.
    auto* rec2 = domain.acquire();
    rec2->retired.push_back(pool[6].get());
    rec2->retired.push_back(pool[7].get());
  }
  EXPECT_EQ(returned.load(), 8) << "destructor must route leftovers through the reclaimer";
}

TEST(Hazard, ScanSparesProtectedNodes) {
  Domain domain;
  auto* holder = domain.acquire();
  auto* scanner = domain.acquire();
  auto* node = new HpNode{1};
  std::atomic<HpNode*> src{node};
  domain.protect(holder, 0, src);

  scanner->retired.push_back(node);
  EXPECT_EQ(domain.scan(*scanner), 0u) << "protected node must survive the scan";
  ASSERT_EQ(scanner->retired.size(), 1u);

  domain.clear(holder, 0);
  EXPECT_EQ(domain.scan(*scanner), 1u) << "unprotected now: must be freed";
  domain.release(holder);
  domain.release(scanner);
}

TEST(Hazard, SortedAndUnsortedScansAgree) {
  for (ScanMode mode : {ScanMode::kUnsorted, ScanMode::kSorted}) {
    HpDomain<HpNode, 2> domain(mode);
    auto* holder = domain.acquire();
    auto* scanner = domain.acquire();
    std::vector<HpNode*> nodes;
    for (int i = 0; i < 10; ++i) {
      nodes.push_back(new HpNode{i});
    }
    std::atomic<HpNode*> src0{nodes[3]};
    std::atomic<HpNode*> src1{nodes[7]};
    domain.protect(holder, 0, src0);
    domain.protect(holder, 1, src1);
    for (HpNode* n : nodes) {
      scanner->retired.push_back(n);
    }
    EXPECT_EQ(domain.scan(*scanner), 8u) << "mode=" << static_cast<int>(mode);
    ASSERT_EQ(scanner->retired.size(), 2u);
    domain.clear(holder, 0);
    domain.clear(holder, 1);
    EXPECT_EQ(domain.scan(*scanner), 2u);
    domain.release(holder);
    domain.release(scanner);
  }
}

TEST(Hazard, RetireScansAtThreshold) {
  // threshold = multiplier x records; with one record and multiplier 4 the
  // 4th retire triggers a scan.
  HpDomain<HpNode, 2> domain(ScanMode::kUnsorted, 4);
  auto* rec = domain.acquire();
  for (int i = 0; i < 3; ++i) {
    domain.retire(rec, new HpNode{i});
    EXPECT_EQ(domain.reclaimed_count(), 0u);
  }
  domain.retire(rec, new HpNode{3});
  EXPECT_EQ(domain.reclaimed_count(), 4u);
  domain.release(rec);
}

TEST(Hazard, ReleasedRecordLeftoversSurviveUntilDomainDies) {
  // A node still hazard-protected at release time must not be freed; the
  // domain destructor reclaims it (quiescent teardown).
  std::atomic<int> freed{0};
  {
    Domain domain;
    auto* holder = domain.acquire();
    auto* leaver = domain.acquire();
    auto* node = new HpNode{1};
    std::atomic<HpNode*> src{node};
    domain.protect(holder, 0, src);
    leaver->retired.push_back(node);
    domain.release(leaver);  // scan runs, node survives (protected)
    EXPECT_EQ(domain.reclaimed_count(), 0u);
    domain.release(holder);
  }
  // domain destructor deleted `node`; nothing to assert beyond no crash
  // (ASan build would flag a leak or double-free).
  (void)freed;
}

TEST(Hazard, ManyThreadsAcquireDistinctRecords) {
  constexpr int kThreads = 8;
  Domain domain;
  std::vector<Domain::Record*> recs(kThreads, nullptr);
  std::vector<std::thread> threads;
  std::atomic<int> ready{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      recs[t] = domain.acquire();
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
        std::this_thread::yield();
      }
      domain.release(recs[t]);
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  for (int i = 0; i < kThreads; ++i) {
    for (int j = i + 1; j < kThreads; ++j) {
      EXPECT_NE(recs[i], recs[j]);
    }
  }
  EXPECT_LE(domain.record_count(), static_cast<std::size_t>(kThreads));
}

TEST(Hazard, ConcurrentRetireScanNeverFreesProtected) {
  // One thread holds a hazard on a node while others retire unrelated nodes
  // causing scans; the protected node must stay alive (its id readable).
  Domain domain;
  auto* holder = domain.acquire();
  auto* node = new HpNode{42};
  std::atomic<HpNode*> src{node};
  domain.protect(holder, 0, src);

  std::atomic<bool> corrupted{false};
  std::thread churner([&] {
    auto* rec = domain.acquire();
    for (int i = 0; i < 5000; ++i) {
      domain.retire(rec, new HpNode{i});
    }
    domain.release(rec);
  });
  for (int i = 0; i < 10000; ++i) {
    if (node->id != 42) {
      corrupted.store(true);
      break;
    }
  }
  churner.join();
  EXPECT_FALSE(corrupted.load());
  domain.clear(holder, 0);
  auto* rec = domain.acquire();
  domain.retire(rec, node);
  domain.release(rec);
  domain.release(holder);
}

}  // namespace
