// Heavier stress and failure-injection runs. These are the long-pole tests;
// each is bounded to a few seconds on a single-core host (oversubscription
// there maximizes mid-operation preemption — the adversarial regime the
// paper's ABA analysis targets).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "evq/baselines/ms_sim_queue.hpp"
#include "evq/core/cas_array_queue.hpp"
#include "evq/core/llsc_array_queue.hpp"
#include "evq/llsc/versioned_llsc.hpp"
#include "evq/llsc/weak_llsc.hpp"
#include "evq/verify/fifo_checkers.hpp"

namespace {

using namespace evq;
using verify::CheckResult;
using verify::ConsumerLog;
using verify::Token;

/// Mixed-role stress with parameterizable thread count and capacity:
/// each thread pushes and pops `per_thread` tokens, logging pops.
template <typename Q>
void mixed_stress(Q& q, std::size_t threads, std::uint64_t per_thread) {
  std::vector<std::vector<Token>> tokens(threads);
  std::vector<ConsumerLog> logs(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    tokens[t].resize(per_thread);
    for (std::uint64_t i = 0; i < per_thread; ++i) {
      tokens[t][i].producer = static_cast<std::uint32_t>(t);
      tokens[t][i].seq = i;
    }
  }
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      auto h = q.handle();
      logs[t].reserve(per_thread);
      for (std::uint64_t i = 0; i < per_thread; ++i) {
        while (!q.try_push(h, &tokens[t][i])) {
          std::this_thread::yield();
        }
        Token* out = nullptr;
        while ((out = q.try_pop(h)) == nullptr) {
          std::this_thread::yield();
        }
        logs[t].push_back(*out);
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  const std::vector<std::uint64_t> pushed(threads, per_thread);
  CheckResult conservation = verify::check_conservation(logs, pushed);
  EXPECT_TRUE(conservation.ok) << conservation.reason;
  CheckResult order = verify::check_per_producer_order(logs, threads);
  EXPECT_TRUE(order.ok) << order.reason;
}

// Parameterized sweep: (threads, capacity) grid for both core algorithms.
struct StressParam {
  std::size_t threads;
  std::size_t capacity;
  std::uint64_t per_thread;
};

class CoreStress : public ::testing::TestWithParam<StressParam> {};

TEST_P(CoreStress, LlscArrayQueueConserves) {
  const auto p = GetParam();
  LlscArrayQueue<Token> q(p.capacity);
  mixed_stress(q, p.threads, p.per_thread);
}

TEST_P(CoreStress, LlscArrayQueuePackedConserves) {
  const auto p = GetParam();
  LlscArrayQueue<Token, llsc::PackedLlsc> q(p.capacity);
  mixed_stress(q, p.threads, p.per_thread);
}

TEST_P(CoreStress, CasArrayQueueConserves) {
  const auto p = GetParam();
  CasArrayQueue<Token> q(p.capacity);
  mixed_stress(q, p.threads, p.per_thread);
}

TEST_P(CoreStress, MsSimQueueConserves) {
  const auto p = GetParam();
  baselines::MsSimQueue<Token> q;
  mixed_stress(q, p.threads, p.per_thread);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CoreStress,
    ::testing::Values(StressParam{2, 2, 4000}, StressParam{4, 4, 2500}, StressParam{4, 64, 2500},
                      StressParam{8, 8, 1200}, StressParam{16, 16, 500}),
    [](const ::testing::TestParamInfo<StressParam>& info) {
      return "t" + std::to_string(info.param.threads) + "_c" +
             std::to_string(info.param.capacity);
    });

// Spurious-failure torture: Algorithm 1 under 33% SC failure must stay
// correct (limitation #3 of Sec. 5 is a performance problem, not a
// correctness one).
template <typename T>
using VeryWeak = llsc::WeakLlsc<llsc::VersionedLlsc<T>, 33>;

TEST(WeakLlscStress, AlgorithmOneSurvivesHeavySpuriousFailure) {
  LlscArrayQueue<Token, VeryWeak> q(4);
  mixed_stress(q, 4, 1500);
}

// Registry churn storm: handles are constructed/destroyed continuously while
// traffic flows; the variable list must stay bounded by live concurrency.
TEST(RegistryStress, HandleChurnKeepsSpaceBounded) {
  CasArrayQueue<Token> q(32);
  constexpr std::size_t kThreads = 6;
  constexpr std::uint64_t kOps = 1500;
  std::vector<std::vector<Token>> tokens(kThreads);
  std::vector<std::thread> workers;
  std::atomic<std::uint64_t> popped{0};
  for (std::size_t t = 0; t < kThreads; ++t) {
    tokens[t].resize(kOps);
    workers.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kOps; ++i) {
        auto h = q.handle();  // fresh registration every iteration
        while (!q.try_push(h, &tokens[t][i])) {
          std::this_thread::yield();
        }
        Token* out = nullptr;
        while ((out = q.try_pop(h)) == nullptr) {
          std::this_thread::yield();
        }
        popped.fetch_add(1);
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(popped.load(), kThreads * kOps);
  EXPECT_EQ(q.registry().claimed_count(), 0u);
  // 2x live concurrency is a generous bound; total registrations were 9000.
  EXPECT_LE(q.registry().list_length(), 2 * kThreads);
}

// Long-haul wraparound: indices pass many multiples of the capacity, with
// concurrent traffic the whole time.
TEST(WraparoundStress, IndicesLapTheArrayThousandsOfTimes) {
  CasArrayQueue<Token> q(2);
  constexpr std::size_t kThreads = 3;
  constexpr std::uint64_t kOps = 4000;
  mixed_stress(q, kThreads, kOps);
  EXPECT_EQ(q.head_index(), q.tail_index());
  EXPECT_EQ(q.head_index(), kThreads * kOps);
  EXPECT_GE(q.head_index() / q.capacity(), 1000u) << "each slot was reused >= 1000 times";
}

}  // namespace
