#!/usr/bin/env python3
"""Render an evq health dump as a human-readable report.

Accepts either flavour of health JSON the tree produces and auto-detects
which one it was given:

 * a Monitor snapshot from the `health_json` sink — the torture watchdog's
   wedge dump (`EVQ_HEALTH_DUMP_PATH`, default torture_health.json) or
   anything else that streamed `evq::health::health_json`; recognised by its
   top-level "health_schema_version";
 * an evq-bench document produced with `--health`, where each scenario
   carries an optional "health" digest; recognised by "schema_version" +
   "scenarios".

The report leads with active findings (the part a human acts on), then the
per-queue rates that triggered them, then thread progress (snapshots only).
Rates that are all zero are elided — a healthy queue is one line.

Exit code is 0 unless --fail-on-findings is given and at least one finding
is active (useful as a cheap CI tripwire over a torture wedge artifact).

usage: health_report.py health.json [--fail-on-findings]
"""

import argparse
import json
import sys

RATES = ("cas_fail_ratio", "slot_skip_per_op", "faa_waste",
         "comb_engagement", "comb_mean_batch", "seg_in_flight")

SEVERITY_HINTS = {
    "threshold_burn": "livelock tax: dequeuers are burning tickets on "
                      "skipped slots",
    "combiner_collapse": "combiner holds the lock but applies no batches; "
                         "peers have withdrawn to direct mode",
    "segment_leak": "segments retire slower than they are allocated",
    "thread_stalled": "a thread that was making progress has stopped "
                      "completing ops",
}


def fmt_rate(value):
    if isinstance(value, float):
        return f"{value:.3g}"
    return str(value)


def render_queues(queues, indent="  "):
    lines = []
    for q in queues:
        # Snapshot documents nest the rates ("rates": {...}); bench health
        # blocks inline them. Look in both places.
        nested = q.get("rates") if isinstance(q.get("rates"), dict) else {}
        rates = {r: q.get(r, nested.get(r, 0)) for r in RATES}
        notable = [(r, v) for r, v in rates.items() if v]
        lat = []
        for op in ("push", "pop"):
            p50 = q.get(f"{op}_p50_ns")
            if p50 is None and isinstance(q.get("latency_ns"), dict):
                p50 = q["latency_ns"].get(f"{op}_p50")
            p99 = q.get(f"{op}_p99_ns")
            if p99 is None and isinstance(q.get("latency_ns"), dict):
                p99 = q["latency_ns"].get(f"{op}_p99")
            if p50 is not None:
                lat.append(f"{op} p50/p99 {fmt_rate(p50)}/{fmt_rate(p99)}ns")
        parts = [f"ops={q.get('ops', 0)}"]
        parts += [f"{name}={fmt_rate(value)}" for name, value in notable]
        parts += lat
        lines.append(f"{indent}{q.get('queue', '?'):<28s} " + "  ".join(parts))
    return lines


def render_findings(findings, indent="  "):
    lines = []
    for f in findings:
        ftype = f.get("type", "?")
        lines.append(f"{indent}[{ftype}] {f.get('subject', '?')} "
                     f"(severity {fmt_rate(f.get('severity', 0))}, "
                     f"since poll {f.get('since_poll', 0)})")
        detail = f.get("detail", "")
        if detail:
            lines.append(f"{indent}    {detail}")
        hint = SEVERITY_HINTS.get(ftype)
        if hint:
            lines.append(f"{indent}    hint: {hint}")
    return lines


def report_snapshot(doc):
    """Monitor snapshot (health_json sink)."""
    findings = doc.get("findings", [])
    print(f"evq health snapshot (poll {doc.get('poll', 0)}): "
          f"{len(findings)} active finding(s)")
    if findings:
        print("findings:")
        for line in render_findings(findings):
            print(line)
    queues = doc.get("queues", [])
    if queues:
        print(f"queues ({len(queues)}):")
        for line in render_queues(queues):
            print(line)
    threads = doc.get("threads", [])
    stalled = [t for t in threads if t.get("stalled_now")]
    if threads:
        print(f"threads: {len(threads)} tracked, {len(stalled)} stalled")
        for t in stalled:
            print(f"  thread {t.get('ord', '?')}: op_seq {t.get('op_seq', 0)} "
                  f"frozen for {t.get('stalled_polls', 0)} poll(s); "
                  f"last {t.get('last_op', '?')} on "
                  f"{t.get('last_queue', '?')}")
    return len(findings)


def report_bench(doc):
    """evq-bench document: one block per scenario that ran with --health."""
    total = 0
    reported = 0
    for scenario in doc.get("scenarios", []):
        health = scenario.get("health")
        if not isinstance(health, dict):
            continue
        reported += 1
        findings = health.get("findings", [])
        total += len(findings)
        active = {k: v for k, v in health.get("finding_polls", {}).items() if v}
        print(f"scenario {scenario.get('name', '?')}: "
              f"{health.get('polls', 0)} poll(s), "
              f"{len(findings)} finding(s) active at end")
        if active:
            print("  finding-active polls: " +
                  ", ".join(f"{k}={v}" for k, v in sorted(active.items())))
        if findings:
            for line in render_findings(findings, indent="  "):
                print(line)
        for line in render_queues(health.get("queues", []), indent="  "):
            print(line)
    if reported == 0:
        print("no health sections found (was the run made with --health?)")
    return total


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", help="health snapshot or evq-bench JSON")
    parser.add_argument("--fail-on-findings", action="store_true",
                        help="exit 1 if any finding is active")
    args = parser.parse_args()

    with open(args.path) as f:
        doc = json.load(f)

    if "health_schema_version" in doc:
        if doc["health_schema_version"] != 1:
            sys.exit(f"{args.path}: unsupported health_schema_version "
                     f"{doc['health_schema_version']!r} (expected 1)")
        findings = report_snapshot(doc)
    elif "scenarios" in doc:
        if doc.get("schema_version") not in (1, 2):
            sys.exit(f"{args.path}: unsupported schema_version "
                     f"{doc.get('schema_version')!r} (expected 1 or 2)")
        findings = report_bench(doc)
    else:
        sys.exit(f"{args.path}: neither a health snapshot "
                 f"(health_schema_version) nor a bench document (scenarios)")

    if args.fail_on_findings and findings:
        print(f"FAIL: {findings} active finding(s) with --fail-on-findings",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
