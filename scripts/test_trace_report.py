#!/usr/bin/env python3
"""Smoke tests for scripts/trace_report.py (run by CTest as `trace_report_py`).

trace_report.py doubles as CI's trace-shape validator (the trace smoke job
fails the build on its exit code), so these tests pin both halves of the
contract: the aggregation (per-queue phase/op/help/reclaim rollups, retry
distribution, flow-event help matrix) and the validation failure modes
(missing traceEvents, malformed "X" events, --min-events).

Stdlib only (unittest + subprocess): the test must run on a bare python3 with
no pip installs.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "trace_report.py")


def x_event(name, cat, tid, ts, dur, **args):
    ev = {"ph": "X", "name": name, "cat": cat, "pid": 1, "tid": tid,
          "ts": ts, "dur": dur}
    if args:
        ev["args"] = args
    return ev


def sample_trace():
    """A small but complete trace: two threads on one queue, phases nested
    under ops, one help flow from t1 to t2, one reclamation slice."""
    return {"traceEvents": [
        {"ph": "M", "name": "thread_name", "pid": 1, "tid": 1,
         "args": {"name": "producer-0"}},
        {"ph": "M", "name": "thread_name", "pid": 1, "tid": 2,
         "args": {"name": "consumer-0"}},
        x_event("push", "op", 1, 100, 10.0, queue="scq", retries=0),
        x_event("push", "op", 1, 120, 30.0, queue="scq", retries=2),
        x_event("pop", "op", 2, 130, 20.0, queue="scq", retries=0),
        x_event("index_load", "phase", 1, 100, 2.0, queue="scq"),
        x_event("slot_attempt", "phase", 1, 104, 6.0, queue="scq"),
        x_event("slot_attempt", "phase", 1, 125, 24.0, queue="scq"),
        x_event("help_advance", "help", 1, 150, 5.0, queue="scq"),
        x_event("helped", "help", 2, 152, 0.0, queue="scq"),
        x_event("hp_scan", "reclaim", 2, 160, 3.0, queue="scq"),
        {"ph": "s", "id": 7, "pid": 1, "tid": 1, "ts": 150, "cat": "help",
         "name": "help_flow"},
        {"ph": "f", "id": 7, "pid": 1, "tid": 2, "ts": 152, "cat": "help",
         "name": "help_flow", "bp": "e"},
    ]}


class TraceReportTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def write(self, name, doc):
        path = os.path.join(self.tmp.name, name)
        with open(path, "w") as f:
            json.dump(doc, f)
        return path

    def run_report(self, path, *flags):
        return subprocess.run([sys.executable, SCRIPT, path, *flags],
                              capture_output=True, text=True)

    # -- aggregation --------------------------------------------------------

    def test_json_report_aggregates_ops_phases_help_and_reclaim(self):
        path = self.write("t.json", sample_trace())
        r = self.run_report(path, "--json")
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        report = json.loads(r.stdout)
        scq = report["queues"]["scq"]
        self.assertEqual(scq["ops"]["push"], {"count": 2, "total_us": 40.0})
        self.assertEqual(scq["ops"]["pop"], {"count": 1, "total_us": 20.0})
        self.assertEqual(scq["phases"]["slot_attempt"],
                         {"count": 2, "total_us": 30.0})
        self.assertEqual(scq["help_advances"], {"count": 1, "total_us": 5.0})
        self.assertEqual(scq["helped_markers"], 1)
        self.assertEqual(scq["reclaim"]["hp_scan"],
                         {"count": 1, "total_us": 3.0})

    def test_retry_distribution_counts_per_sampled_op(self):
        path = self.write("t.json", sample_trace())
        r = self.run_report(path, "--json")
        report = json.loads(r.stdout)
        self.assertEqual(report["retry_distribution"], {"0": 2, "2": 1})

    def test_help_matrix_joins_flow_start_to_finish(self):
        path = self.write("t.json", sample_trace())
        r = self.run_report(path, "--json")
        report = json.loads(r.stdout)
        self.assertEqual(report["help_matrix"],
                         [{"helper_tid": 1, "helped_tid": 2, "count": 1}])

    def test_text_report_names_threads_in_the_help_matrix(self):
        path = self.write("t.json", sample_trace())
        r = self.run_report(path)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("producer-0 -> consumer-0: 1", r.stdout)
        self.assertIn("queue scq: 3 sampled ops", r.stdout)

    # -- validation ---------------------------------------------------------

    def test_missing_trace_events_list_fails(self):
        path = self.write("t.json", {"displayTimeUnit": "ns"})
        r = self.run_report(path)
        self.assertNotEqual(r.returncode, 0)
        self.assertIn("no traceEvents list", r.stderr)

    def test_x_event_missing_required_keys_fails(self):
        doc = {"traceEvents": [{"ph": "X", "name": "push", "ts": 1}]}
        path = self.write("t.json", doc)
        r = self.run_report(path)
        self.assertNotEqual(r.returncode, 0)
        self.assertIn("missing", r.stderr)
        self.assertIn("cat", r.stderr)

    def test_event_without_phase_type_fails(self):
        path = self.write("t.json", {"traceEvents": [{"name": "push"}]})
        r = self.run_report(path)
        self.assertNotEqual(r.returncode, 0)
        self.assertIn("no phase type", r.stderr)

    def test_min_events_gates_empty_smoke_traces(self):
        path = self.write("t.json", {"traceEvents": []})
        r = self.run_report(path, "--min-events", "1")
        self.assertNotEqual(r.returncode, 0)
        self.assertIn("--min-events", r.stderr)
        # The same empty trace passes without the gate.
        r = self.run_report(path)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)


if __name__ == "__main__":
    unittest.main()
