#!/usr/bin/env python3
"""Smoke tests for scripts/comb_overhead_gate.py (CTest: `comb_overhead_gate_py`).

The gate is the CI job that keeps the flat-combining facade honest about its
uncontended tax (EXPERIMENTS.md E10): it compares facade vs bare-ring series
WITHIN one bench document, row by row, and exits 1 past --threshold. These
tests pin the pairing logic, the exit-code contract, the schema acceptance
(v1 and v2), and the missing-series error path.

Stdlib only (unittest + subprocess): the test must run on a bare python3 with
no pip installs.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "comb_overhead_gate.py")


def make_doc(series_means, scenario="combining-overhead", schema=1):
    """Builds a bench document with one scenario. `series_means` maps series
    name -> list of mean_seconds (one per row)."""
    n_rows = max(len(m) for m in series_means.values())
    return {"schema_version": schema, "scenarios": [{
        "name": scenario,
        "rows": [{"label": f"{2 ** i}t"} for i in range(n_rows)],
        "series": [{"name": name,
                    "cells": [{"mean_seconds": mean} for mean in means]}
                   for name, means in series_means.items()],
    }]}


class CombOverheadGateTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def write(self, doc):
        path = os.path.join(self.tmp.name, "bench.json")
        with open(path, "w") as f:
            json.dump(doc, f)
        return path

    def run_gate(self, path, *flags):
        return subprocess.run([sys.executable, SCRIPT, path, *flags],
                              capture_output=True, text=True)

    def test_within_budget_passes(self):
        # Facades 2% over their rings: inside the default 5% budget.
        path = self.write(make_doc({
            "comb-cas": [1.02, 2.04], "fifo-simcas": [1.0, 2.0],
            "comb-scq": [0.51, 1.02], "scq": [0.5, 1.0],
        }))
        r = self.run_gate(path)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("compared 4 rows", r.stdout)
        self.assertIn("within budget", r.stdout)

    def test_over_budget_row_fails_and_names_the_pair(self):
        path = self.write(make_doc({
            "comb-cas": [1.0, 2.4], "fifo-simcas": [1.0, 2.0],  # row 2: +20%
            "comb-scq": [0.5, 1.0], "scq": [0.5, 1.0],
        }))
        r = self.run_gate(path)
        self.assertEqual(r.returncode, 1)
        self.assertIn("FAIL", r.stderr)
        self.assertIn("comb-cas", r.stderr)
        self.assertIn("[2t]", r.stderr)

    def test_threshold_flag_loosens_the_budget(self):
        path = self.write(make_doc({
            "comb-cas": [1.0, 2.4], "fifo-simcas": [1.0, 2.0],
            "comb-scq": [0.5, 1.0], "scq": [0.5, 1.0],
        }))
        r = self.run_gate(path, "--threshold", "25")
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_faster_than_baseline_always_passes(self):
        path = self.write(make_doc({
            "comb-cas": [0.5], "fifo-simcas": [1.0],
            "comb-scq": [0.4], "scq": [1.0],
        }))
        r = self.run_gate(path, "--threshold", "0")
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_explicit_pair_overrides_defaults(self):
        path = self.write(make_doc({"my-facade": [1.2], "my-ring": [1.0]}))
        r = self.run_gate(path, "--pair", "my-facade:my-ring")
        self.assertEqual(r.returncode, 1)
        self.assertIn("my-facade", r.stderr)

    def test_accepts_schema_v2(self):
        path = self.write(make_doc({
            "comb-cas": [1.0], "fifo-simcas": [1.0],
            "comb-scq": [0.5], "scq": [0.5],
        }, schema=2))
        r = self.run_gate(path)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_rejects_unknown_schema(self):
        path = self.write(make_doc({"comb-cas": [1.0]}, schema=3))
        r = self.run_gate(path)
        self.assertNotEqual(r.returncode, 0)
        self.assertIn("unsupported schema_version", r.stderr + r.stdout)

    def test_missing_series_is_an_error(self):
        path = self.write(make_doc({"comb-cas": [1.0]}))  # no fifo-simcas
        r = self.run_gate(path)
        self.assertNotEqual(r.returncode, 0)
        self.assertIn("fifo-simcas", r.stderr + r.stdout)

    def test_missing_scenario_is_an_error(self):
        path = self.write(make_doc({"comb-cas": [1.0], "fifo-simcas": [1.0]},
                                   scenario="something-else"))
        r = self.run_gate(path)
        self.assertNotEqual(r.returncode, 0)
        self.assertIn("combining-overhead", r.stderr + r.stdout)


if __name__ == "__main__":
    unittest.main()
