#!/usr/bin/env python3
"""Smoke tests for scripts/bench_diff.py (run by CTest as `bench_diff_py`).

bench_diff.py is the regression gate wired into three CI jobs
(bench-build, trace-overhead, telemetry-overhead, combining-overhead), so its
exit-code contract IS the gate: these tests pin the join semantics
(scenario/series/row), the mean and p50/p99 thresholds, the one-sided-scenario
warning path, and the --fail-on-regress / --fail-over exit codes.

Stdlib only (unittest + subprocess): the test must run on a bare python3 with
no pip installs.
"""

import copy
import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "bench_diff.py")


def make_doc(scenarios):
    """Builds a schema-1 document. `scenarios` maps name -> {series: [cells]}
    where each cell is (mean_seconds, throughput, p50, p99) or
    (mean_seconds, throughput) for cells without latency sampling."""
    doc = {"schema_version": 1, "scenarios": []}
    for name, series_map in scenarios.items():
        n_rows = max(len(cells) for cells in series_map.values())
        scenario = {
            "name": name,
            "rows": [{"label": str(i + 1)} for i in range(n_rows)],
            "series": [],
            "telemetry": [],
        }
        for series_name, cells in series_map.items():
            out_cells = []
            for cell in cells:
                c = {"mean_seconds": cell[0], "throughput_ops_per_sec": cell[1]}
                if len(cell) > 2:
                    c["latency_ns"] = {"p50": cell[2], "p99": cell[3]}
                out_cells.append(c)
            scenario["series"].append({"name": series_name, "cells": out_cells})
        doc["scenarios"].append(scenario)
    return doc


class BenchDiffTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def write(self, name, doc):
        path = os.path.join(self.tmp.name, name)
        with open(path, "w") as f:
            json.dump(doc, f)
        return path

    def run_diff(self, baseline, candidate, *flags):
        return subprocess.run(
            [sys.executable, SCRIPT, baseline, candidate, *flags],
            capture_output=True, text=True)

    # -- basics ------------------------------------------------------------

    def test_identical_documents_pass(self):
        doc = make_doc({"fig6a": {"scq": [(1.0, 1000.0, 50.0, 200.0)]}})
        base = self.write("base.json", doc)
        cand = self.write("cand.json", copy.deepcopy(doc))
        r = self.run_diff(base, cand, "--fail-on-regress")
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("compared 1 cells", r.stdout)
        self.assertIn("no changes beyond threshold", r.stdout)

    def test_rejects_wrong_schema_version(self):
        doc = make_doc({"fig6a": {"scq": [(1.0, 1000.0)]}})
        doc["schema_version"] = 3
        base = self.write("base.json", doc)
        cand = self.write("cand.json", doc)
        r = self.run_diff(base, cand)
        self.assertNotEqual(r.returncode, 0)
        self.assertIn("unsupported schema_version", r.stderr + r.stdout)

    def test_accepts_schema_v2_and_mixed_versions(self):
        # A v1 baseline against a v2 candidate is the normal upgrade path.
        base_doc = make_doc({"s": {"q": [(1.0, 1000.0)]}})
        cand_doc = make_doc({"s": {"q": [(1.0, 1000.0)]}})
        cand_doc["schema_version"] = 2
        base = self.write("base.json", base_doc)
        cand = self.write("cand.json", cand_doc)
        r = self.run_diff(base, cand, "--fail-on-regress")
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("compared 1 cells", r.stdout)

    # -- regression detection and exit codes -------------------------------

    def test_mean_regression_warns_but_exits_zero_by_default(self):
        base = self.write("base.json", make_doc({"s": {"q": [(1.0, 1000.0)]}}))
        cand = self.write("cand.json", make_doc({"s": {"q": [(1.5, 666.0)]}}))
        r = self.run_diff(base, cand, "--threshold", "10")
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("regressions", r.stdout)
        self.assertIn("mean seconds", r.stdout)

    def test_fail_on_regress_makes_mean_regression_fatal(self):
        base = self.write("base.json", make_doc({"s": {"q": [(1.0, 1000.0)]}}))
        cand = self.write("cand.json", make_doc({"s": {"q": [(1.5, 666.0)]}}))
        r = self.run_diff(base, cand, "--threshold", "10", "--fail-on-regress")
        self.assertEqual(r.returncode, 1)
        self.assertIn("FAIL", r.stderr)

    def test_fail_over_trips_only_past_its_own_threshold(self):
        base = self.write("base.json", make_doc({"s": {"q": [(1.0, 1000.0)]}}))
        cand = self.write("cand.json", make_doc({"s": {"q": [(1.15, 870.0)]}}))
        # 15% worse: reported at --threshold 10, but under --fail-over 20.
        r = self.run_diff(base, cand, "--threshold", "10", "--fail-over", "20")
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("regressions", r.stdout)
        # Same candidate against --fail-over 10 must trip.
        r = self.run_diff(base, cand, "--threshold", "10", "--fail-over", "10")
        self.assertEqual(r.returncode, 1)
        self.assertIn("exceeds --fail-over", r.stderr)

    def test_improvement_never_fails(self):
        base = self.write("base.json", make_doc({"s": {"q": [(2.0, 500.0)]}}))
        cand = self.write("cand.json", make_doc({"s": {"q": [(1.0, 1000.0)]}}))
        r = self.run_diff(base, cand, "--fail-on-regress", "--fail-over", "5")
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("improvements", r.stdout)

    # -- latency percentiles -----------------------------------------------

    def test_p50_uses_main_threshold_p99_uses_its_own(self):
        base = self.write("base.json",
                          make_doc({"s": {"q": [(1.0, 1000.0, 100.0, 1000.0)]}}))
        # p50 +15% (beyond 10), p99 +15% (within its default 25) — only the
        # p50 line is a regression.
        cand = self.write("cand.json",
                          make_doc({"s": {"q": [(1.0, 1000.0, 115.0, 1150.0)]}}))
        r = self.run_diff(base, cand, "--threshold", "10", "--fail-on-regress")
        self.assertEqual(r.returncode, 1)
        self.assertIn("latency p50", r.stdout)
        self.assertNotIn("latency p99", r.stdout)

    def test_p99_threshold_flag_is_honoured(self):
        base = self.write("base.json",
                          make_doc({"s": {"q": [(1.0, 1000.0, 100.0, 1000.0)]}}))
        cand = self.write("cand.json",
                          make_doc({"s": {"q": [(1.0, 1000.0, 100.0, 1300.0)]}}))
        r = self.run_diff(base, cand, "--p99-threshold", "20", "--fail-on-regress")
        self.assertEqual(r.returncode, 1)
        self.assertIn("latency p99", r.stdout)

    # -- join semantics ----------------------------------------------------

    def test_scenario_only_in_one_side_warns_and_is_excluded(self):
        base = self.write("base.json", make_doc({"s": {"q": [(1.0, 1000.0)]}}))
        cand = self.write("cand.json", make_doc({
            "s": {"q": [(1.0, 1000.0)]},
            # 10x regression — but in a scenario the baseline lacks, so it
            # must be a warning, not a failure.
            "combining": {"comb-scq": [(10.0, 100.0)]},
        }))
        r = self.run_diff(base, cand, "--fail-on-regress", "--fail-over", "5")
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("only in candidate", r.stderr)
        self.assertIn("compared 1 cells", r.stdout)

    # -- health section (optional, informational) --------------------------

    @staticmethod
    def add_health(doc, scenario_name, skip_rate, finding_polls):
        for scenario in doc["scenarios"]:
            if scenario["name"] == scenario_name:
                scenario["health"] = {
                    "schema_version": 1,
                    "polls": 10,
                    "finding_polls": finding_polls,
                    "queues": [{
                        "queue": "q", "ops": 1000, "cas_fail_ratio": 0.0,
                        "slot_skip_per_op": skip_rate, "faa_waste": 0.0,
                        "comb_engagement": 0.0, "comb_mean_batch": 0.0,
                        "seg_in_flight": 0,
                    }],
                    "findings": [],
                }

    def test_health_deltas_are_reported_but_never_fatal(self):
        base_doc = make_doc({"s": {"q": [(1.0, 1000.0)]}})
        cand_doc = copy.deepcopy(base_doc)
        self.add_health(base_doc, "s", 0.01, {"threshold_burn": 0})
        self.add_health(cand_doc, "s", 0.30, {"threshold_burn": 4})
        base = self.write("base.json", base_doc)
        cand = self.write("cand.json", cand_doc)
        r = self.run_diff(base, cand, "--fail-on-regress", "--fail-over", "5")
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("health rate changes", r.stdout)
        self.assertIn("slot_skip_per_op: 0.01 -> 0.3", r.stdout)
        self.assertIn("health finding activity changes", r.stdout)
        self.assertIn("threshold_burn: active 0 -> 4 poll(s)", r.stdout)

    def test_missing_health_section_is_tolerated(self):
        # A pre-health baseline diffed against a --health candidate: the
        # section is one-sided, so no health lines and no crash.
        base_doc = make_doc({"s": {"q": [(1.0, 1000.0)]}})
        cand_doc = copy.deepcopy(base_doc)
        self.add_health(cand_doc, "s", 0.30, {"threshold_burn": 4})
        base = self.write("base.json", base_doc)
        cand = self.write("cand.json", cand_doc)
        r = self.run_diff(base, cand, "--fail-on-regress")
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertNotIn("health rate changes", r.stdout)

    # -- perf section (schema v2, optional, informational) ------------------

    @staticmethod
    def add_perf(doc, scenario_name, series_name, cell_perfs,
                 backend=("perf_event", True, "")):
        """Attaches per-cell perf dicts and the scenario backend record, and
        bumps the document to schema v2 (the section only exists there)."""
        doc["schema_version"] = 2
        for scenario in doc["scenarios"]:
            if scenario["name"] != scenario_name:
                continue
            name, available, reason = backend
            scenario["perf"] = {"backend": name, "available": available,
                                "reason": reason}
            for series in scenario["series"]:
                if series["name"] == series_name:
                    for cell, perf in zip(series["cells"], cell_perfs):
                        if perf is not None:
                            cell["perf"] = perf

    def test_perf_deltas_are_reported_but_never_fatal(self):
        base_doc = make_doc({"s": {"q": [(1.0, 1000.0)]}})
        cand_doc = copy.deepcopy(base_doc)
        self.add_perf(base_doc, "s", "q",
                      [{"ops": 1000, "cycles_per_op": 300.0,
                        "llc_miss_per_op": 0.2, "ipc": 1.2}])
        self.add_perf(cand_doc, "s", "q",
                      [{"ops": 1000, "cycles_per_op": 450.0,
                        "llc_miss_per_op": 0.8, "ipc": 0.9}])
        base = self.write("base.json", base_doc)
        cand = self.write("cand.json", cand_doc)
        r = self.run_diff(base, cand, "--fail-on-regress", "--fail-over", "5")
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("perf counter changes", r.stdout)
        self.assertIn("cycles_per_op[1]: 300 -> 450 (+50.0%)", r.stdout)
        self.assertIn("llc_miss_per_op[1]: 0.2 -> 0.8", r.stdout)
        self.assertIn("ipc[1]: 1.2 -> 0.9 (-0.30)", r.stdout)

    def test_missing_perf_section_is_tolerated(self):
        # v1 baseline (no perf anywhere) against a v2 --perf candidate: the
        # cells just don't join, and the diff stays clean.
        base_doc = make_doc({"s": {"q": [(1.0, 1000.0)]}})
        cand_doc = copy.deepcopy(base_doc)
        self.add_perf(cand_doc, "s", "q",
                      [{"ops": 1000, "cycles_per_op": 450.0}])
        base = self.write("base.json", base_doc)
        cand = self.write("cand.json", cand_doc)
        r = self.run_diff(base, cand, "--fail-on-regress")
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertNotIn("perf counter changes", r.stdout)

    def test_one_sided_perf_event_is_skipped(self):
        # Same metric set except the candidate host lost branch-miss counters:
        # shared metrics diff, the one-sided metric is silently skipped.
        base_doc = make_doc({"s": {"q": [(1.0, 1000.0)]}})
        cand_doc = copy.deepcopy(base_doc)
        self.add_perf(base_doc, "s", "q",
                      [{"ops": 1000, "cycles_per_op": 300.0,
                        "branch_miss_per_op": 1.0}])
        self.add_perf(cand_doc, "s", "q",
                      [{"ops": 1000, "cycles_per_op": 600.0}])
        base = self.write("base.json", base_doc)
        cand = self.write("cand.json", cand_doc)
        r = self.run_diff(base, cand)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("cycles_per_op[1]: 300 -> 600", r.stdout)
        self.assertNotIn("branch_miss_per_op", r.stdout)

    def test_backend_availability_drift_warns(self):
        base_doc = make_doc({"s": {"q": [(1.0, 1000.0)]}})
        cand_doc = copy.deepcopy(base_doc)
        self.add_perf(base_doc, "s", "q", [{"ops": 1000}],
                      backend=("perf_event", True, ""))
        self.add_perf(cand_doc, "s", "q", [None],
                      backend=("null", False, "perf_event_open denied"))
        base = self.write("base.json", base_doc)
        cand = self.write("cand.json", cand_doc)
        r = self.run_diff(base, cand, "--fail-on-regress")
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("perf backend availability changed", r.stderr)
        self.assertIn("perf_event_open denied", r.stderr)

    def test_join_is_per_series_and_row(self):
        base = self.write("base.json", make_doc(
            {"s": {"q1": [(1.0, 1000.0), (2.0, 500.0)], "q2": [(1.0, 1000.0)]}}))
        # Only q1 row 2 regresses; q2 improves.
        cand = self.write("cand.json", make_doc(
            {"s": {"q1": [(1.0, 1000.0), (3.0, 333.0)], "q2": [(0.5, 2000.0)]}}))
        r = self.run_diff(base, cand, "--fail-on-regress")
        self.assertEqual(r.returncode, 1)
        self.assertIn("compared 3 cells", r.stdout)
        self.assertIn("q1", r.stdout)
        self.assertIn("[2]", r.stdout)


if __name__ == "__main__":
    unittest.main()
