#!/usr/bin/env python3
"""Smoke tests for scripts/health_report.py (run by CTest as `health_report_py`).

Pins the two input auto-detection paths (Monitor snapshot vs evq-bench
document), the findings-first rendering, the --fail-on-findings exit
contract, and the rejection of unknown schemas. Stdlib only, same rule as
test_bench_diff.py: must run on a bare python3.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "health_report.py")


def snapshot_doc(findings=()):
    return {
        "health_schema_version": 1,
        "poll": 7,
        # Rates are nested under "rates" in the health_json flavour —
        # keep the fixture shaped exactly like the sink's real output.
        "queues": [{
            "queue": "core.scq", "id": 1, "ops": 5000,
            "rates": {"cas_fail_ratio": 0.0, "slot_skip_per_op": 0.31,
                      "faa_waste": 0.08, "comb_engagement": 0.0,
                      "comb_mean_batch": 0.0, "seg_in_flight": 0},
        }],
        "threads": [
            {"ord": 2, "live": True, "op_seq": 90, "stalled_now": True,
             "stalled_polls": 3, "last_op": "pop_ok", "last_queue": "core.scq",
             "last_index": 4, "last_retries": 0},
            {"ord": 3, "live": True, "op_seq": 500, "stalled_now": False,
             "stalled_polls": 0, "last_op": "push_ok",
             "last_queue": "core.scq", "last_index": 9, "last_retries": 1},
        ],
        "findings": list(findings),
    }


def burn_finding():
    return {"type": "threshold_burn", "subject": "core.scq", "severity": 0.31,
            "since_poll": 5, "detail": "slot_skip_per_op 0.31 over 5000 ops"}


def bench_doc(with_health=True):
    scenario = {"name": "health-overhead", "rows": [{"label": "1"}],
                "series": [{"name": "scq", "cells": [
                    {"mean_seconds": 1.0, "throughput_ops_per_sec": 1000.0}]}]}
    if with_health:
        scenario["health"] = {
            "schema_version": 1, "polls": 12,
            "finding_polls": {"threshold_burn": 3, "combiner_collapse": 0,
                              "segment_leak": 0, "thread_stalled": 0},
            "queues": [{"queue": "scq", "ops": 9000, "cas_fail_ratio": 0.02,
                        "slot_skip_per_op": 0.0, "faa_waste": 0.0,
                        "comb_engagement": 0.0, "comb_mean_batch": 0.0,
                        "seg_in_flight": 0,
                        "push_p50_ns": 120.0, "push_p99_ns": 900.0}],
            "findings": [burn_finding()],
        }
    return {"schema_version": 1, "scenarios": [scenario]}


class HealthReportTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def write(self, doc):
        path = os.path.join(self.tmp.name, "doc.json")
        with open(path, "w") as f:
            json.dump(doc, f)
        return path

    def run_report(self, path, *flags):
        return subprocess.run([sys.executable, SCRIPT, path, *flags],
                              capture_output=True, text=True)

    # -- Monitor snapshot flavour ------------------------------------------

    def test_snapshot_quiet_exits_zero(self):
        r = self.run_report(self.write(snapshot_doc()), "--fail-on-findings")
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("0 active finding(s)", r.stdout)
        self.assertIn("core.scq", r.stdout)
        self.assertIn("slot_skip_per_op=0.31", r.stdout)

    def test_snapshot_reports_findings_and_stalled_threads(self):
        r = self.run_report(self.write(snapshot_doc([burn_finding()])))
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("[threshold_burn] core.scq", r.stdout)
        self.assertIn("hint:", r.stdout)
        self.assertIn("2 tracked, 1 stalled", r.stdout)
        self.assertIn("thread 2", r.stdout)

    def test_fail_on_findings_trips(self):
        r = self.run_report(self.write(snapshot_doc([burn_finding()])),
                            "--fail-on-findings")
        self.assertEqual(r.returncode, 1)
        self.assertIn("FAIL", r.stderr)

    # -- evq-bench flavour -------------------------------------------------

    def test_bench_document_reports_per_scenario_health(self):
        r = self.run_report(self.write(bench_doc()))
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("scenario health-overhead", r.stdout)
        self.assertIn("threshold_burn=3", r.stdout)
        self.assertIn("[threshold_burn] core.scq", r.stdout)
        self.assertIn("push p50/p99 120/900ns", r.stdout)

    def test_bench_without_health_sections_says_so(self):
        r = self.run_report(self.write(bench_doc(with_health=False)),
                            "--fail-on-findings")
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("no health sections found", r.stdout)

    # -- schema guards -----------------------------------------------------

    def test_rejects_unknown_document_shape(self):
        r = self.run_report(self.write({"something": 1}))
        self.assertNotEqual(r.returncode, 0)
        self.assertIn("neither", r.stderr + r.stdout)

    def test_rejects_wrong_snapshot_version(self):
        doc = snapshot_doc()
        doc["health_schema_version"] = 9
        r = self.run_report(self.write(doc))
        self.assertNotEqual(r.returncode, 0)
        self.assertIn("unsupported health_schema_version",
                      r.stderr + r.stdout)


if __name__ == "__main__":
    unittest.main()
