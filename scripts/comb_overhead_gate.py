#!/usr/bin/env python3
"""CI gate for the flat-combining facade's uncontended tax (EXPERIMENTS.md E10).

Reads ONE evq-bench JSON document (schema_version 1 or 2) and compares series
WITHIN it: each combining facade against its bare inner ring, row by row,
on mean_seconds. This intra-document comparison is what bench_diff.py cannot
do — it only joins identical series names across two documents — and it is
the right shape for the facade gate: both series come from the same build,
same run, same machine, so the quotient isolates the facade itself.

Usage:
  comb_overhead_gate.py bench.json [--scenario combining-overhead]
      [--threshold 5] [--pair comb-cas:fifo-simcas] [--pair comb-scq:scq]

Exit 1 when any facade row is more than --threshold percent slower than its
bare-ring row. Faster-than-baseline rows always pass.
"""

import argparse
import json
import sys

DEFAULT_PAIRS = ["comb-cas:fifo-simcas", "comb-scq:scq"]


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema_version") not in (1, 2):
        sys.exit(f"{path}: unsupported schema_version {doc.get('schema_version')!r}")
    return doc


def find_scenario(doc, name):
    for scenario in doc.get("scenarios", []):
        if scenario.get("name") == name:
            return scenario
    return None


def series_cells(scenario, name):
    for series in scenario.get("series", []):
        if series.get("name") == name:
            return series.get("cells", [])
    return None


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("json", help="evq-bench JSON document (schema 1 or 2)")
    parser.add_argument("--scenario", default="combining-overhead",
                        help="scenario holding both facade and bare-ring series")
    parser.add_argument("--threshold", type=float, default=5.0,
                        help="max tolerated facade overhead, percent (default 5)")
    parser.add_argument("--pair", action="append", dest="pairs", metavar="FACADE:BASE",
                        help="facade:bare-ring series pair (repeatable; default "
                             + ", ".join(DEFAULT_PAIRS) + ")")
    args = parser.parse_args()
    pairs = args.pairs or DEFAULT_PAIRS

    doc = load(args.json)
    scenario = find_scenario(doc, args.scenario)
    if scenario is None:
        sys.exit(f"{args.json}: no scenario named {args.scenario!r}")
    rows = [row.get("label", str(i + 1)) for i, row in enumerate(scenario.get("rows", []))]

    failures = []
    compared = 0
    for pair in pairs:
        try:
            facade_name, base_name = pair.split(":", 1)
        except ValueError:
            sys.exit(f"--pair {pair!r}: expected FACADE:BASE")
        facade = series_cells(scenario, facade_name)
        base = series_cells(scenario, base_name)
        if facade is None or base is None:
            missing = facade_name if facade is None else base_name
            sys.exit(f"{args.json}: scenario {args.scenario!r} has no series {missing!r}")
        for i, (f_cell, b_cell) in enumerate(zip(facade, base)):
            f_mean = f_cell.get("mean_seconds", 0.0)
            b_mean = b_cell.get("mean_seconds", 0.0)
            if b_mean <= 0.0:
                continue
            overhead = (f_mean / b_mean - 1.0) * 100.0
            label = rows[i] if i < len(rows) else str(i + 1)
            verdict = "over budget" if overhead > args.threshold else "ok"
            print(f"{facade_name} vs {base_name} [{label}]: {overhead:+.1f}% ({verdict})")
            compared += 1
            if overhead > args.threshold:
                failures.append((facade_name, base_name, label, overhead))

    if compared == 0:
        sys.exit(f"{args.json}: nothing compared — empty series in {args.scenario!r}")
    print(f"compared {compared} rows, threshold {args.threshold:.1f}%")
    if failures:
        for facade_name, base_name, label, overhead in failures:
            print(f"FAIL: {facade_name} is {overhead:+.1f}% over {base_name} at [{label}] "
                  f"(budget {args.threshold:.1f}%)", file=sys.stderr)
        return 1
    print("combining facade overhead within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
