#!/usr/bin/env python3
"""Aggregate an evq Chrome Trace Format trace into a phase/retry/help report.

Input is the JSON written by `evq-bench --trace out.json` (or a torture
wedge dump / `evq-stats --format=trace` scrape). The report answers the
questions EXPERIMENTS.md E7 asks of a trace:

  * where do the nanoseconds of an operation go? — per queue, the share of
    total sampled-op time spent in each phase (index_load, slot_attempt,
    backoff) plus help-advance and reclamation time;
  * how contended was the run? — the distribution of per-op retry counts;
  * who helped whom? — a helper thread x helped thread matrix built from
    the exporter's flow events.

The script also validates the document shape (CI's trace smoke job runs it
against a fresh trace and fails the build on malformed output): top-level
traceEvents list, every event with a "ph", every "X" event with name/cat/
ts/dur. --min-events N additionally fails runs that recorded fewer than N
events (a smoke test with 0 events means the wiring is broken).

usage: trace_report.py trace.json [--json] [--min-events N]
"""

import argparse
import collections
import json
import sys

def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"{path}: {err}")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        sys.exit(f"{path}: no traceEvents list")
    for i, ev in enumerate(events):
        if not isinstance(ev, dict) or "ph" not in ev:
            sys.exit(f"{path}: traceEvents[{i}] has no phase type")
        if ev["ph"] == "X":
            missing = {"name", "cat", "ts", "dur", "tid"} - ev.keys()
            if missing:
                sys.exit(f"{path}: traceEvents[{i}] missing {sorted(missing)}")
    return events


def aggregate(events):
    thread_names = {}
    # per queue: {"ops": {name: [count, total_us]}, "phases": {...},
    #             "help": [count, total_us], "reclaim": {name: [count, us]}}
    queues = collections.defaultdict(lambda: {
        "ops": collections.defaultdict(lambda: [0, 0.0]),
        "phases": collections.defaultdict(lambda: [0, 0.0]),
        "help": [0, 0.0],
        "helped": 0,
        "reclaim": collections.defaultdict(lambda: [0, 0.0]),
    })
    retries = collections.Counter()
    flow_starts = {}   # flow id -> helper tid
    flow_pairs = collections.Counter()  # (helper tid, helped tid) -> count

    for ev in events:
        ph = ev["ph"]
        if ph == "M" and ev.get("name") == "thread_name":
            thread_names[ev.get("tid")] = ev.get("args", {}).get("name", "?")
        elif ph == "s":
            flow_starts[ev.get("id")] = ev.get("tid")
        elif ph == "f":
            helper = flow_starts.get(ev.get("id"))
            if helper is not None:
                flow_pairs[(helper, ev.get("tid"))] += 1
        elif ph == "X":
            cat, name = ev["cat"], ev["name"]
            queue = ev.get("args", {}).get("queue", "?")
            q = queues[queue]
            if cat == "op":
                q["ops"][name][0] += 1
                q["ops"][name][1] += ev["dur"]
                retries[ev.get("args", {}).get("retries", 0)] += 1
            elif cat == "phase":
                q["phases"][name][0] += 1
                q["phases"][name][1] += ev["dur"]
            elif cat == "help":
                if name == "helped":
                    q["helped"] += 1
                else:
                    q["help"][0] += 1
                    q["help"][1] += ev["dur"]
            elif cat == "reclaim":
                q["reclaim"][name][0] += 1
                q["reclaim"][name][1] += ev["dur"]

    return {
        "threads": thread_names,
        "queues": {name: {
            "ops": {k: {"count": v[0], "total_us": round(v[1], 3)}
                    for k, v in sorted(q["ops"].items())},
            "phases": {k: {"count": v[0], "total_us": round(v[1], 3)}
                       for k, v in sorted(q["phases"].items())},
            "help_advances": {"count": q["help"][0],
                              "total_us": round(q["help"][1], 3)},
            "helped_markers": q["helped"],
            "reclaim": {k: {"count": v[0], "total_us": round(v[1], 3)}
                        for k, v in sorted(q["reclaim"].items())},
        } for name, q in sorted(queues.items())},
        "retry_distribution": {str(k): v for k, v in sorted(retries.items())},
        "help_matrix": [{"helper_tid": h, "helped_tid": d, "count": n}
                        for (h, d), n in sorted(flow_pairs.items())],
    }


def print_report(report, total_events):
    print(f"trace: {total_events} events, {len(report['threads'])} thread "
          f"track(s), {len(report['queues'])} queue(s)")
    for queue, q in report["queues"].items():
        op_time = sum(o["total_us"] for o in q["ops"].values())
        op_count = sum(o["count"] for o in q["ops"].values())
        print(f"\nqueue {queue}: {op_count} sampled ops, "
              f"{op_time:.1f} us total op time")
        for name, o in q["ops"].items():
            mean = o["total_us"] / o["count"] if o["count"] else 0.0
            print(f"  op    {name:<14s} {o['count']:>8d}  mean {mean:8.3f} us")
        for name, p in q["phases"].items():
            share = 100.0 * p["total_us"] / op_time if op_time else 0.0
            print(f"  phase {name:<14s} {p['count']:>8d}  "
                  f"{p['total_us']:10.1f} us  {share:5.1f}% of op time")
        ha = q["help_advances"]
        if ha["count"] or q["helped_markers"]:
            print(f"  help  advances={ha['count']} ({ha['total_us']:.1f} us) "
                  f"helped-markers={q['helped_markers']}")
        for name, r in q["reclaim"].items():
            print(f"  reclaim {name:<12s} {r['count']:>8d}  {r['total_us']:10.1f} us")
    if report["retry_distribution"]:
        print("\nretry distribution (per sampled op):")
        for k, v in report["retry_distribution"].items():
            print(f"  {k:>4s} retries: {v}")
    if report["help_matrix"]:
        print("\nhelper -> helped matrix (flow events):")
        for row in report["help_matrix"]:
            helper = report["threads"].get(row["helper_tid"],
                                           str(row["helper_tid"]))
            helped = report["threads"].get(row["helped_tid"],
                                           str(row["helped_tid"]))
            print(f"  {helper} -> {helped}: {row['count']}")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace")
    parser.add_argument("--json", action="store_true",
                        help="emit the aggregate as JSON instead of text")
    parser.add_argument("--min-events", type=int, default=0, metavar="N",
                        help="exit 1 unless the trace has at least N events")
    args = parser.parse_args()

    events = load(args.trace)
    if len(events) < args.min_events:
        sys.exit(f"{args.trace}: {len(events)} events < --min-events "
                 f"{args.min_events}")

    report = aggregate(events)
    if args.json:
        json.dump(report, sys.stdout, indent=2)
        print()
    else:
        print_report(report, len(events))
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. `trace_report.py t.json | head`
        sys.exit(0)
