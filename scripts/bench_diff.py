#!/usr/bin/env python3
"""Compare two evq-bench JSON documents and flag perf regressions.

Joins the two documents on (scenario, series name, row label) and reports
every cell whose mean time, throughput, or latency percentile (p50/p99, when
the run sampled latency) moved by more than the threshold. Tail percentiles
are noisier than means, so p99 has its own reporting threshold
(--p99-threshold, default 25%). Telemetry counter deltas (per scenario and
queue: retries, SC failures, help-advances, ...) are reported informationally
— a counter shift explains a timing shift but is never itself a failure.
Hardware-counter deltas (schema v2 "perf" cell sections: cycles/op,
llc_miss/op, ipc, ...) are reported the same way; documents missing the
section on either side — v1 baselines, counters-off runs, degraded hosts —
diff cleanly with those cells simply not joined. Accepts schema versions 1
and 2 on either side.
Intended for the BENCH_*.json trajectory workflow (EXPERIMENTS.md): keep one
JSON per milestone, diff the newest against the previous one.

Warn-only by default — timing on shared CI machines is noisy, so the exit
code stays 0 unless --fail-over is given a (larger) threshold that a
regression exceeds, or --fail-on-regress makes ANY reported regression
(i.e. beyond --threshold; beyond --p99-threshold for p99) fatal.

usage: bench_diff.py baseline.json candidate.json [--threshold PCT]
                     [--p99-threshold PCT] [--fail-over PCT]
                     [--fail-on-regress]
"""

import argparse
import json
import sys


SUPPORTED_SCHEMAS = (1, 2)


def load(path):
    with open(path) as f:
        doc = json.load(f)
    version = doc.get("schema_version")
    if version not in SUPPORTED_SCHEMAS:
        sys.exit(f"{path}: unsupported schema_version {version!r} "
                 f"(expected one of {SUPPORTED_SCHEMAS})")
    return doc


def cells(doc):
    """Yields ((scenario, series, row_label), cell) for every cell."""
    for scenario in doc.get("scenarios", []):
        labels = [row["label"] for row in scenario.get("rows", [])]
        for series in scenario.get("series", []):
            for label, cell in zip(labels, series.get("cells", [])):
                yield (scenario["name"], series["name"], label), cell


def telemetry_rows(doc):
    """Yields ((scenario, queue), counters) for every telemetry block."""
    for scenario in doc.get("scenarios", []):
        for block in scenario.get("telemetry", []):
            yield (scenario["name"], block["queue"]), block.get("counters", {})


HEALTH_RATES = ("cas_fail_ratio", "slot_skip_per_op", "faa_waste",
                "comb_engagement", "comb_mean_batch", "seg_in_flight")


def health_rows(doc):
    """Yields ((scenario, queue), rates) for every health queue block.

    The "health" section is optional (only runs with --health emit it) —
    documents without it simply yield nothing, so diffing a pre-health
    baseline against a post-health candidate works unchanged.
    """
    for scenario in doc.get("scenarios", []):
        health = scenario.get("health")
        if not isinstance(health, dict):
            continue
        for block in health.get("queues", []):
            yield (scenario["name"], block.get("queue", "?")), block


def finding_rows(doc):
    """Yields (scenario, finding_polls dict) for scenarios with health data."""
    for scenario in doc.get("scenarios", []):
        health = scenario.get("health")
        if isinstance(health, dict):
            yield scenario["name"], health.get("finding_polls", {})


# Per-op hardware-counter metrics (schema v2 "perf" cell sections). cycles/op
# and llc_miss/op diff on percent change like timings; ipc is a ratio and
# diffs on absolute change so a 1.2 -> 0.9 drop reads as -0.3, not -25%.
PERF_PCT_METRICS = ("cycles_per_op", "instructions_per_op",
                    "l1d_miss_per_op", "llc_miss_per_op",
                    "branch_miss_per_op")


def perf_cells(doc):
    """Yields (cell_key, perf dict) for cells carrying a perf section.

    The section only exists in schema v2 documents produced with --perf on a
    counting host — v1 baselines (or degraded-host candidates) yield nothing,
    and the join below simply finds no shared keys.
    """
    for key, cell in cells(doc):
        perf = cell.get("perf")
        if isinstance(perf, dict):
            yield key, perf


def perf_backends(doc):
    """Yields (scenario, perf backend record) for scenarios run with --perf."""
    for scenario in doc.get("scenarios", []):
        perf = scenario.get("perf")
        if isinstance(perf, dict):
            yield scenario["name"], perf


def pct_change(old, new):
    if old <= 0:
        return 0.0
    return (new - old) / old * 100.0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="report changes beyond this percent (default 10)")
    parser.add_argument("--p99-threshold", type=float, default=25.0, metavar="PCT",
                        help="report p99 latency changes beyond this percent "
                             "(default 25; tails are noisier than means)")
    parser.add_argument("--fail-over", type=float, default=None, metavar="PCT",
                        help="exit 1 if any regression exceeds PCT percent "
                             "(default: warn only)")
    parser.add_argument("--fail-on-regress", action="store_true",
                        help="exit 1 on any regression beyond --threshold")
    args = parser.parse_args()

    base_doc = load(args.baseline)
    cand_doc = load(args.candidate)
    base = dict(cells(base_doc))
    cand = dict(cells(cand_doc))

    # Scenarios present in only one document are a comparison-coverage gap
    # (e.g. a baseline regenerated before a new scenario existed), not an
    # error: warn explicitly and keep their cells out of the dropped/new
    # counts below so those only report genuine row/series drift.
    base_scenarios = {s["name"] for s in base_doc.get("scenarios", [])}
    cand_scenarios = {s["name"] for s in cand_doc.get("scenarios", [])}
    for name in sorted(base_scenarios - cand_scenarios):
        print(f"warning: scenario '{name}' only in baseline — not compared",
              file=sys.stderr)
    for name in sorted(cand_scenarios - base_scenarios):
        print(f"warning: scenario '{name}' only in candidate — not compared",
              file=sys.stderr)
    shared_scenarios = base_scenarios & cand_scenarios
    base = {k: v for k, v in base.items() if k[0] in shared_scenarios}
    cand = {k: v for k, v in cand.items() if k[0] in shared_scenarios}

    regressions = []      # (key, metric, pct) — worse
    improvements = []     # faster / higher throughput
    worst = 0.0
    for key in sorted(base.keys() & cand.keys()):
        b, c = base[key], cand[key]
        dt = pct_change(b["mean_seconds"], c["mean_seconds"])
        dq = pct_change(b["throughput_ops_per_sec"], c["throughput_ops_per_sec"])
        if dt > args.threshold:
            regressions.append((key, "mean_seconds", dt))
            worst = max(worst, dt)
        elif dt < -args.threshold:
            improvements.append((key, "mean_seconds", dt))
        if dq < -args.threshold:
            regressions.append((key, "throughput", -dq))
            worst = max(worst, -dq)
        b_lat, c_lat = b.get("latency_ns"), c.get("latency_ns")
        if b_lat and c_lat:
            for quantile, limit in (("p50", args.threshold),
                                    ("p99", args.p99_threshold)):
                dl = pct_change(b_lat[quantile], c_lat[quantile])
                if dl > limit:
                    regressions.append((key, f"latency {quantile}", dl))
                    worst = max(worst, dl)
                elif dl < -limit:
                    improvements.append((key, f"latency {quantile}", dl))

    only_base = sorted(base.keys() - cand.keys())
    only_cand = sorted(cand.keys() - base.keys())

    def show(name, rows, sign):
        if not rows:
            return
        print(f"{name}:")
        for (scenario, series, label), metric, pct in rows:
            print(f"  {scenario:>18s} {series:<20s} {metric.replace('_', ' ')}"
                  f"[{label}]: {sign}{abs(pct):.1f}%")

    print(f"compared {len(base.keys() & cand.keys())} cells "
          f"({args.baseline} -> {args.candidate}, threshold {args.threshold:.0f}%)")
    show("regressions", regressions, "+")
    show("improvements", improvements, "-")
    if only_base:
        print(f"dropped cells (baseline only): {len(only_base)}")
    if only_cand:
        print(f"new cells (candidate only): {len(only_cand)}")
    if not regressions and not improvements:
        print("no changes beyond threshold")

    # Telemetry counters: informational context for the timing deltas above
    # (e.g. a slot_sc_fail explosion explains a mean-time regression). Never
    # affects the exit code.
    base_tel = dict(telemetry_rows(base_doc))
    cand_tel = dict(telemetry_rows(cand_doc))
    counter_lines = []
    for key in sorted(base_tel.keys() & cand_tel.keys()):
        b, c = base_tel[key], cand_tel[key]
        for counter in sorted(b.keys() | c.keys()):
            old, new = b.get(counter, 0), c.get(counter, 0)
            if old == new:
                continue
            dp = pct_change(old, new)
            if old == 0 or abs(dp) > args.threshold:
                scenario, queue = key
                counter_lines.append(
                    f"  {scenario:>18s} {queue:<20s} {counter}: "
                    f"{old} -> {new}" + (f" ({dp:+.1f}%)" if old else ""))
    if counter_lines:
        print("telemetry counter changes (informational):")
        for line in counter_lines:
            print(line)

    # Health rate deltas: like telemetry, informational only. Rates are
    # ratios near zero, so they diff on absolute change (0.02 floor), not
    # percent — a skip rate going 0.001 -> 0.003 is +200% but meaningless.
    base_health = dict(health_rows(base_doc))
    cand_health = dict(health_rows(cand_doc))
    health_lines = []
    for key in sorted(base_health.keys() & cand_health.keys()):
        b, c = base_health[key], cand_health[key]
        for rate in HEALTH_RATES:
            old, new = b.get(rate, 0.0), c.get(rate, 0.0)
            if abs(new - old) <= 0.02:
                continue
            scenario, queue = key
            health_lines.append(
                f"  {scenario:>18s} {queue:<20s} {rate}: "
                f"{old:.3g} -> {new:.3g}")
    if health_lines:
        print("health rate changes (informational):")
        for line in health_lines:
            print(line)

    # Hardware-counter deltas (schema v2 --perf runs): informational, like
    # telemetry — cycles/op explains a mean-time shift but the timing delta
    # above is the gate. Either side may lack the section entirely (v1
    # baseline, counters-off run, degraded host): those cells just don't join.
    base_perf = {k: v for k, v in perf_cells(base_doc)
                 if k[0] in shared_scenarios}
    cand_perf = {k: v for k, v in perf_cells(cand_doc)
                 if k[0] in shared_scenarios}
    perf_lines = []
    for key in sorted(base_perf.keys() & cand_perf.keys()):
        b, c = base_perf[key], cand_perf[key]
        scenario, series, label = key
        for metric in PERF_PCT_METRICS:
            if metric not in b or metric not in c:
                continue  # event unavailable on one host: nothing to compare
            dp = pct_change(b[metric], c[metric])
            if abs(dp) <= args.threshold:
                continue
            perf_lines.append(
                f"  {scenario:>18s} {series:<20s} {metric}[{label}]: "
                f"{b[metric]:.3g} -> {c[metric]:.3g} ({dp:+.1f}%)")
        if "ipc" in b and "ipc" in c and abs(c["ipc"] - b["ipc"]) > 0.1:
            perf_lines.append(
                f"  {scenario:>18s} {series:<20s} ipc[{label}]: "
                f"{b['ipc']:.3g} -> {c['ipc']:.3g} "
                f"({c['ipc'] - b['ipc']:+.2f})")
    if perf_lines:
        print("perf counter changes (informational):")
        for line in perf_lines:
            print(line)

    # Backend availability drift is worth a loud note: a candidate silently
    # losing its counters would otherwise look like "no perf changes".
    base_backends = dict(perf_backends(base_doc))
    cand_backends = dict(perf_backends(cand_doc))
    for scenario in sorted(base_backends.keys() & cand_backends.keys()):
        b, c = base_backends[scenario], cand_backends[scenario]
        if b.get("available") != c.get("available"):
            reason = c.get("reason") or b.get("reason") or ""
            print(f"warning: scenario '{scenario}' perf backend availability "
                  f"changed: {b.get('available')} -> {c.get('available')}"
                  + (f" ({reason})" if reason else ""), file=sys.stderr)

    base_findings = dict(finding_rows(base_doc))
    cand_findings = dict(finding_rows(cand_doc))
    finding_lines = []
    for scenario in sorted(base_findings.keys() & cand_findings.keys()):
        b, c = base_findings[scenario], cand_findings[scenario]
        for ftype in sorted(b.keys() | c.keys()):
            old, new = b.get(ftype, 0), c.get(ftype, 0)
            if old != new:
                finding_lines.append(
                    f"  {scenario:>18s} {ftype}: active {old} -> {new} poll(s)")
    if finding_lines:
        print("health finding activity changes (informational):")
        for line in finding_lines:
            print(line)

    if args.fail_on_regress and regressions:
        print(f"FAIL: {len(regressions)} regression(s) beyond threshold "
              f"{args.threshold:.0f}% with --fail-on-regress", file=sys.stderr)
        return 1
    if args.fail_over is not None and worst > args.fail_over:
        print(f"FAIL: worst regression {worst:.1f}% exceeds --fail-over "
              f"{args.fail_over:.0f}%", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
