file(REMOVE_RECURSE
  "CMakeFiles/event_bus.dir/event_bus.cpp.o"
  "CMakeFiles/event_bus.dir/event_bus.cpp.o.d"
  "event_bus"
  "event_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
