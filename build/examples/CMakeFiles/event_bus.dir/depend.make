# Empty dependencies file for event_bus.
# This may be replaced when dependencies are built.
