file(REMOVE_RECURSE
  "CMakeFiles/mpmc_pipeline.dir/mpmc_pipeline.cpp.o"
  "CMakeFiles/mpmc_pipeline.dir/mpmc_pipeline.cpp.o.d"
  "mpmc_pipeline"
  "mpmc_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpmc_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
