# Empty compiler generated dependencies file for mpmc_pipeline.
# This may be replaced when dependencies are built.
