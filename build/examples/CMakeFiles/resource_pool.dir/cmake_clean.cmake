file(REMOVE_RECURSE
  "CMakeFiles/resource_pool.dir/resource_pool.cpp.o"
  "CMakeFiles/resource_pool.dir/resource_pool.cpp.o.d"
  "resource_pool"
  "resource_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resource_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
