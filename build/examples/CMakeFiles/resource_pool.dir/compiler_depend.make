# Empty compiler generated dependencies file for resource_pool.
# This may be replaced when dependencies are built.
