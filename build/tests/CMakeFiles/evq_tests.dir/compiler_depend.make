# Empty compiler generated dependencies file for evq_tests.
# This may be replaced when dependencies are built.
