
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/aba_scenario_test.cpp" "tests/CMakeFiles/evq_tests.dir/aba_scenario_test.cpp.o" "gcc" "tests/CMakeFiles/evq_tests.dir/aba_scenario_test.cpp.o.d"
  "/root/repo/tests/baseline_queues_test.cpp" "tests/CMakeFiles/evq_tests.dir/baseline_queues_test.cpp.o" "gcc" "tests/CMakeFiles/evq_tests.dir/baseline_queues_test.cpp.o.d"
  "/root/repo/tests/cas_array_queue_test.cpp" "tests/CMakeFiles/evq_tests.dir/cas_array_queue_test.cpp.o" "gcc" "tests/CMakeFiles/evq_tests.dir/cas_array_queue_test.cpp.o.d"
  "/root/repo/tests/common_test.cpp" "tests/CMakeFiles/evq_tests.dir/common_test.cpp.o" "gcc" "tests/CMakeFiles/evq_tests.dir/common_test.cpp.o.d"
  "/root/repo/tests/dwcas_test.cpp" "tests/CMakeFiles/evq_tests.dir/dwcas_test.cpp.o" "gcc" "tests/CMakeFiles/evq_tests.dir/dwcas_test.cpp.o.d"
  "/root/repo/tests/epoch_test.cpp" "tests/CMakeFiles/evq_tests.dir/epoch_test.cpp.o" "gcc" "tests/CMakeFiles/evq_tests.dir/epoch_test.cpp.o.d"
  "/root/repo/tests/free_pool_test.cpp" "tests/CMakeFiles/evq_tests.dir/free_pool_test.cpp.o" "gcc" "tests/CMakeFiles/evq_tests.dir/free_pool_test.cpp.o.d"
  "/root/repo/tests/fuzz_differential_test.cpp" "tests/CMakeFiles/evq_tests.dir/fuzz_differential_test.cpp.o" "gcc" "tests/CMakeFiles/evq_tests.dir/fuzz_differential_test.cpp.o.d"
  "/root/repo/tests/harness_test.cpp" "tests/CMakeFiles/evq_tests.dir/harness_test.cpp.o" "gcc" "tests/CMakeFiles/evq_tests.dir/harness_test.cpp.o.d"
  "/root/repo/tests/hazard_test.cpp" "tests/CMakeFiles/evq_tests.dir/hazard_test.cpp.o" "gcc" "tests/CMakeFiles/evq_tests.dir/hazard_test.cpp.o.d"
  "/root/repo/tests/linearizability_test.cpp" "tests/CMakeFiles/evq_tests.dir/linearizability_test.cpp.o" "gcc" "tests/CMakeFiles/evq_tests.dir/linearizability_test.cpp.o.d"
  "/root/repo/tests/llsc_array_queue_test.cpp" "tests/CMakeFiles/evq_tests.dir/llsc_array_queue_test.cpp.o" "gcc" "tests/CMakeFiles/evq_tests.dir/llsc_array_queue_test.cpp.o.d"
  "/root/repo/tests/llsc_queue_weak_test.cpp" "tests/CMakeFiles/evq_tests.dir/llsc_queue_weak_test.cpp.o" "gcc" "tests/CMakeFiles/evq_tests.dir/llsc_queue_weak_test.cpp.o.d"
  "/root/repo/tests/llsc_test.cpp" "tests/CMakeFiles/evq_tests.dir/llsc_test.cpp.o" "gcc" "tests/CMakeFiles/evq_tests.dir/llsc_test.cpp.o.d"
  "/root/repo/tests/model_test.cpp" "tests/CMakeFiles/evq_tests.dir/model_test.cpp.o" "gcc" "tests/CMakeFiles/evq_tests.dir/model_test.cpp.o.d"
  "/root/repo/tests/op_stats_test.cpp" "tests/CMakeFiles/evq_tests.dir/op_stats_test.cpp.o" "gcc" "tests/CMakeFiles/evq_tests.dir/op_stats_test.cpp.o.d"
  "/root/repo/tests/queue_conformance_test.cpp" "tests/CMakeFiles/evq_tests.dir/queue_conformance_test.cpp.o" "gcc" "tests/CMakeFiles/evq_tests.dir/queue_conformance_test.cpp.o.d"
  "/root/repo/tests/queue_ops_test.cpp" "tests/CMakeFiles/evq_tests.dir/queue_ops_test.cpp.o" "gcc" "tests/CMakeFiles/evq_tests.dir/queue_ops_test.cpp.o.d"
  "/root/repo/tests/registry_test.cpp" "tests/CMakeFiles/evq_tests.dir/registry_test.cpp.o" "gcc" "tests/CMakeFiles/evq_tests.dir/registry_test.cpp.o.d"
  "/root/repo/tests/sim_llsc_cell_test.cpp" "tests/CMakeFiles/evq_tests.dir/sim_llsc_cell_test.cpp.o" "gcc" "tests/CMakeFiles/evq_tests.dir/sim_llsc_cell_test.cpp.o.d"
  "/root/repo/tests/stress_test.cpp" "tests/CMakeFiles/evq_tests.dir/stress_test.cpp.o" "gcc" "tests/CMakeFiles/evq_tests.dir/stress_test.cpp.o.d"
  "/root/repo/tests/tz_queue_test.cpp" "tests/CMakeFiles/evq_tests.dir/tz_queue_test.cpp.o" "gcc" "tests/CMakeFiles/evq_tests.dir/tz_queue_test.cpp.o.d"
  "/root/repo/tests/value_queue_test.cpp" "tests/CMakeFiles/evq_tests.dir/value_queue_test.cpp.o" "gcc" "tests/CMakeFiles/evq_tests.dir/value_queue_test.cpp.o.d"
  "/root/repo/tests/verify_test.cpp" "tests/CMakeFiles/evq_tests.dir/verify_test.cpp.o" "gcc" "tests/CMakeFiles/evq_tests.dir/verify_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/evq_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/evq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
