# Empty compiler generated dependencies file for bench_ext_reclaim.
# This may be replaced when dependencies are built.
