file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_reclaim.dir/bench_ext_reclaim.cpp.o"
  "CMakeFiles/bench_ext_reclaim.dir/bench_ext_reclaim.cpp.o.d"
  "bench_ext_reclaim"
  "bench_ext_reclaim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_reclaim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
