# Empty dependencies file for bench_cas_cost.
# This may be replaced when dependencies are built.
