file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6d.dir/bench_fig6d.cpp.o"
  "CMakeFiles/bench_fig6d.dir/bench_fig6d.cpp.o.d"
  "bench_fig6d"
  "bench_fig6d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
