# Empty dependencies file for bench_fig6d.
# This may be replaced when dependencies are built.
