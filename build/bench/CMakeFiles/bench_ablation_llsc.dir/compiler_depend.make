# Empty compiler generated dependencies file for bench_ablation_llsc.
# This may be replaced when dependencies are built.
