file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_llsc.dir/bench_ablation_llsc.cpp.o"
  "CMakeFiles/bench_ablation_llsc.dir/bench_ablation_llsc.cpp.o.d"
  "bench_ablation_llsc"
  "bench_ablation_llsc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_llsc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
