file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_mixed.dir/bench_ext_mixed.cpp.o"
  "CMakeFiles/bench_ext_mixed.dir/bench_ext_mixed.cpp.o.d"
  "bench_ext_mixed"
  "bench_ext_mixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_mixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
