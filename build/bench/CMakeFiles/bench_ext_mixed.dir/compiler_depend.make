# Empty compiler generated dependencies file for bench_ext_mixed.
# This may be replaced when dependencies are built.
