file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_hp.dir/bench_ablation_hp.cpp.o"
  "CMakeFiles/bench_ablation_hp.dir/bench_ablation_hp.cpp.o.d"
  "bench_ablation_hp"
  "bench_ablation_hp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
