# Empty compiler generated dependencies file for bench_ablation_hp.
# This may be replaced when dependencies are built.
