# Empty dependencies file for bench_op_profile.
# This may be replaced when dependencies are built.
