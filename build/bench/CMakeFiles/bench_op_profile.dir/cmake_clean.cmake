file(REMOVE_RECURSE
  "CMakeFiles/bench_op_profile.dir/bench_op_profile.cpp.o"
  "CMakeFiles/bench_op_profile.dir/bench_op_profile.cpp.o.d"
  "bench_op_profile"
  "bench_op_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_op_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
