
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harness/src/cli.cpp" "src/harness/CMakeFiles/evq_harness.dir/src/cli.cpp.o" "gcc" "src/harness/CMakeFiles/evq_harness.dir/src/cli.cpp.o.d"
  "/root/repo/src/harness/src/queue_registry.cpp" "src/harness/CMakeFiles/evq_harness.dir/src/queue_registry.cpp.o" "gcc" "src/harness/CMakeFiles/evq_harness.dir/src/queue_registry.cpp.o.d"
  "/root/repo/src/harness/src/runner.cpp" "src/harness/CMakeFiles/evq_harness.dir/src/runner.cpp.o" "gcc" "src/harness/CMakeFiles/evq_harness.dir/src/runner.cpp.o.d"
  "/root/repo/src/harness/src/workload.cpp" "src/harness/CMakeFiles/evq_harness.dir/src/workload.cpp.o" "gcc" "src/harness/CMakeFiles/evq_harness.dir/src/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/evq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
