file(REMOVE_RECURSE
  "libevq_harness.a"
)
