file(REMOVE_RECURSE
  "CMakeFiles/evq_harness.dir/src/cli.cpp.o"
  "CMakeFiles/evq_harness.dir/src/cli.cpp.o.d"
  "CMakeFiles/evq_harness.dir/src/queue_registry.cpp.o"
  "CMakeFiles/evq_harness.dir/src/queue_registry.cpp.o.d"
  "CMakeFiles/evq_harness.dir/src/runner.cpp.o"
  "CMakeFiles/evq_harness.dir/src/runner.cpp.o.d"
  "CMakeFiles/evq_harness.dir/src/workload.cpp.o"
  "CMakeFiles/evq_harness.dir/src/workload.cpp.o.d"
  "libevq_harness.a"
  "libevq_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evq_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
