# Empty dependencies file for evq_harness.
# This may be replaced when dependencies are built.
