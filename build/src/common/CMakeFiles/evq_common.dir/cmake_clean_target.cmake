file(REMOVE_RECURSE
  "libevq_common.a"
)
