file(REMOVE_RECURSE
  "CMakeFiles/evq_common.dir/src/op_stats.cpp.o"
  "CMakeFiles/evq_common.dir/src/op_stats.cpp.o.d"
  "libevq_common.a"
  "libevq_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evq_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
