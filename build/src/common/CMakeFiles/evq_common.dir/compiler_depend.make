# Empty compiler generated dependencies file for evq_common.
# This may be replaced when dependencies are built.
